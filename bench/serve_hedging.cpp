// Straggler shortening via speculative member hedging vs steal-only.
//
//   $ ./serve_hedging [rounds] [base_us] [slow_factor]
//
// One 4-member parallel assembly where ONE member — chosen at random each
// round — has a slow ORIGINAL execution: the member hook charges it
// `slow_factor` x `base_us` of service time while every sibling (and every
// hedge duplicate) costs `base_us`. This is exactly the case PR 4's work
// stealing cannot help: the member is already running, just slowly, on an
// executor that drew a bad round — migration moves work, it cannot shorten
// it. Sleep-based delays, so the overlap is real even on the 1-core dev
// container. Both modes run the same closed loop: seal one full batch, wait
// for it, repeat.
//
//   steal-only   EngineOptions::hedging = false (stealing on) — the round
//                always pays the full slow execution: ~slow + overheads.
//   hedging      idle workers duplicate the straggling last member once it
//                runs past hedge_factor x the service EWMA; the duplicate
//                (a fresh executor, so `base_us`) wins the result slot and
//                the round costs ~(trigger + base) instead of ~slow.
//
// With the defaults (2 ms base, 8x slow, EWMA settling near base so the
// trigger sits near 4 x 2 ms = 8 ms): ~16 ms vs ~10 ms per round, a ~1.5x
// p99 gap gated at 0.95x, best-of-two against noisy-host oversleep
// outliers — same discipline as bench/serve_stealing. Every result is also
// checked bit-exact against a direct single-LPU run of the same netlist:
// hedging is redundancy, never a semantics change; one mismatching bit
// fails the bench regardless of the latency numbers.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using SteadyClock = std::chrono::steady_clock;

constexpr std::uint32_t kMembers = 4;
constexpr std::size_t kLanes = 16;  // m = 8 -> 16-lane words

struct ModeResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t mismatches = 0;
  ServeReport report;
};

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  std::size_t rank =
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

/// Oracle: the single-LPU compile of the same netlist run directly on a
/// width-1 word — the member-partitioned, stolen, hedged assembly must
/// reproduce it bit for bit.
std::vector<bool> direct_run(LpuSimulator& sim, const Netlist& nl,
                             const std::vector<bool>& bits) {
  std::vector<BitVec> inputs(nl.num_inputs(), BitVec(1));
  for (std::size_t pi = 0; pi < bits.size(); ++pi) {
    if (bits[pi]) inputs[pi].set(0, true);
  }
  const std::vector<BitVec> out = sim.run(inputs);
  std::vector<bool> result(out.size());
  for (std::size_t po = 0; po < out.size(); ++po) result[po] = out[po].get(0);
  return result;
}

ModeResult run_mode(bool hedging, const Netlist& nl, LpuSimulator& oracle,
                    int rounds, std::chrono::microseconds base,
                    std::chrono::microseconds slow) {
  EngineOptions eopt;
  // kMembers hands for the batch plus one spare so a hedge never has to
  // wait for the straggler's own worker (on the 1-core container threads
  // time-share anyway; sleeps keep the overlap honest).
  eopt.num_workers = kMembers + 1;
  eopt.batch_timeout = std::chrono::hours(1);  // only lane-full seals
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  eopt.hedging = hedging;
  eopt.hedge_factor = 4;
  Engine engine(eopt);
  const ModelHandle h = engine.load_parallel("straggler", nl, kMembers);

  // One member per round draws the slow executor; its ORIGINAL pays
  // slow_factor x base, while siblings and hedge duplicates pay base — the
  // duplicate models re-running the work on a healthy executor.
  std::atomic<int> slow_member{0};
  engine.set_member_hook([base, slow, &slow_member](const std::string&,
                                                    std::size_t member,
                                                    bool hedge) {
    const bool straggler =
        !hedge && static_cast<int>(member) == slow_member.load();
    std::this_thread::sleep_for(straggler ? slow : base);
  });

  constexpr int kWarmup = 8;  // simulator construction + EWMA settling
  Rng rng(29);
  std::vector<double> round_us;
  round_us.reserve(static_cast<std::size_t>(rounds));
  ModeResult r;
  std::vector<std::vector<bool>> sent(kLanes);
  for (int round = -kWarmup; round < rounds; ++round) {
    slow_member.store(static_cast<int>(rng.next_below(kMembers)));
    std::vector<std::future<std::vector<bool>>> futs;
    futs.reserve(kLanes);
    const auto t0 = SteadyClock::now();
    for (std::size_t i = 0; i < kLanes; ++i) {
      std::vector<bool> bits(nl.num_inputs());
      for (std::size_t pi = 0; pi < bits.size(); ++pi) {
        bits[pi] = rng.next_bool();
      }
      sent[i] = bits;
      futs.push_back(engine.submit(h, std::move(bits)));  // 16th seals inline
    }
    for (std::size_t i = 0; i < kLanes; ++i) {
      if (futs[i].get() != direct_run(oracle, nl, sent[i])) ++r.mismatches;
    }
    if (round < 0) continue;  // warmup: run it, don't record it
    round_us.push_back(
        std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
            .count());
  }
  r.p50_us = percentile(round_us, 50.0);
  r.p99_us = percentile(round_us, 99.0);
  r.report = engine.report();
  engine.set_member_hook(nullptr);
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r) {
  std::cout << name << ":\n"
            << "  batch latency p50 " << std::fixed << std::setprecision(0)
            << r.p50_us << " us, p99 " << r.p99_us << " us\n"
            << "  member runs " << r.report.member_runs << " (stolen "
            << r.report.steals << "), hedges " << r.report.hedges_launched
            << " launched / " << r.report.hedge_wins << " won, wasted "
            << r.report.hedge_wasted_us << " us\n"
            << "  oracle mismatches " << r.mismatches << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const long long rounds_arg = argc > 1 ? std::atoll(argv[1]) : 120;
  const int rounds = rounds_arg > 0 ? static_cast<int>(rounds_arg) : 120;
  const long long base_arg = argc > 2 ? std::atoll(argv[2]) : 2000;
  const auto base = std::chrono::microseconds(base_arg > 0 ? base_arg : 2000);
  const long long factor_arg = argc > 3 ? std::atoll(argv[3]) : 8;
  const auto slow = base * (factor_arg > 1 ? factor_arg : 8);

  Rng gen(23);
  RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_gates = 96;
  spec.num_outputs = 8;  // >= kMembers POs to split across the assembly
  const Netlist nl = random_dag(spec, gen);
  CompileOptions copt;
  copt.lpu.m = 8;
  copt.lpu.n = 8;
  const CompileResult compiled = compile(nl, copt);
  LpuSimulator oracle(compiled.program);

  std::cout << kMembers << "-member assembly, one random member's original "
            << "slowed to " << slow.count() << " us vs " << base.count()
            << " us siblings/duplicates, " << rounds << " rounds per mode, "
            << std::thread::hardware_concurrency() << " core(s)\n\n";

  // Acceptance gate, mirrored by CI: duplicating the straggler must show up
  // in the tail, hedges must actually win, and every output must match the
  // single-execution oracle. Best-of-two on the latency half: a single
  // attempt can lose to asymmetric oversleep outliers on a loaded host; a
  // real regression fails both. A single bit mismatch fails immediately.
  bool latency_ok = false;
  bool exact_ok = true;
  std::uint64_t wins = 0;
  double hedged_p50 = 0.0, hedged_p99 = 0.0, hedged_rps = 0.0;
  for (int attempt = 0; attempt < 2 && !latency_ok && exact_ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "latency gate missed; retrying once (noisy host?)\n\n";
    }
    const ModeResult steal_only =
        run_mode(/*hedging=*/false, nl, oracle, rounds, base, slow);
    print_mode("steal-only (hedging = false)", steal_only);
    const ModeResult hedged =
        run_mode(/*hedging=*/true, nl, oracle, rounds, base, slow);
    print_mode("hedging", hedged);

    std::cout << "batch p99: " << std::fixed << std::setprecision(0)
              << steal_only.p99_us << " -> " << hedged.p99_us << " us";
    if (hedged.p99_us > 0.0) {
      std::cout << " (" << std::setprecision(2)
                << steal_only.p99_us / hedged.p99_us << "x)";
    }
    std::cout << "\n";
    exact_ok = steal_only.mismatches == 0 && hedged.mismatches == 0;
    wins = hedged.report.hedge_wins;
    latency_ok = hedged.p99_us < 0.95 * steal_only.p99_us && wins > 0;
    hedged_p50 = hedged.p50_us;
    hedged_p99 = hedged.p99_us;
    hedged_rps = hedged.report.requests_per_sec;
  }
  const bool ok = latency_ok && exact_ok;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": p99(hedging) < 0.95 x p99(steal-only), hedge_wins > 0 ("
            << wins << "), outputs bit-exact vs oracle\n";
  lbnn::bench::emit_bench_json("serve_hedging", hedged_p50, hedged_p99,
                               hedged_rps, ok);
  return ok ? 0 : 1;
}
