// Straggler hiding via member-level work stealing vs monolithic dispatch.
//
//   $ ./serve_stealing [rounds] [base_us] [slow_factor]
//
// One 4-member parallel assembly with an artificial straggler: the member
// hook charges member 0 `slow_factor` x `base_us` of service time and every
// other member `base_us` (sleep-based, so the comparison also works on the
// 1-core dev container — sleeping threads overlap regardless of cores).
// Both modes run the same closed-loop workload: seal one full batch, wait
// for it, repeat; per-round batch latency feeds the percentiles.
//
//   monolithic   EngineOptions::member_stealing = false — the worker that
//                dequeues the batch runs all 4 members itself, so every
//                round pays 3 x base + slow sequentially.
//   stealing     idle workers steal the remaining members off the batch's
//                atomic cursor, so the fast members overlap the straggler
//                and the round costs ~max(slow, base).
//
// The claim under test (ISSUE 4 acceptance): with one member slowed 8x,
// p99 batch latency under member stealing is measurably below monolithic
// dispatch. Expected ~(slow + 3 x base) vs ~slow: 22 ms vs 16 ms at the
// defaults, a ~1.4x gap gated at 0.95x. The defaults are sized for a noisy
// shared host: nanosleep oversleep outliers run to a few ms regardless of
// the sleep length, so the structural gap (3 x base = 6 ms) must dominate
// the worst single outlier. Each mode also runs a few unrecorded warmup
// rounds (simulator construction, thread wake-up) and enough recorded
// rounds that p99 is a real percentile rather than the single worst round;
// and because a loaded kernel can still land two multi-ms oversleeps in one
// mode's tail while sparing the other's, the gate is best-of-two — a flaky
// host must get unlucky twice in a row to fail a real improvement.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using SteadyClock = std::chrono::steady_clock;

constexpr std::uint32_t kMembers = 4;

struct ModeResult {
  std::vector<double> round_us;  ///< per-round (= per-batch) latency
  double p50_us = 0.0;
  double p99_us = 0.0;
  ServeReport report;
};

double percentile(std::vector<double> sorted_or_not, double p) {
  if (sorted_or_not.empty()) return 0.0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  std::size_t rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_or_not.size()));
  if (rank >= sorted_or_not.size()) rank = sorted_or_not.size() - 1;
  return sorted_or_not[rank];
}

ModeResult run_mode(bool stealing, const Netlist& nl, int rounds,
                    std::chrono::microseconds base,
                    std::chrono::microseconds slow) {
  EngineOptions eopt;
  eopt.num_workers = kMembers;  // enough hands for every member of one batch
  // Every round fills the lane, so batches always seal inline; a short
  // timeout would let the timekeeper split a round's 16 submits into two
  // batches whenever the submitting thread is preempted, doubling that
  // round's straggler cost and polluting the percentile with seal jitter.
  eopt.batch_timeout = std::chrono::hours(1);
  eopt.compile.lpu.m = 8;  // 16-lane words
  eopt.compile.lpu.n = 8;
  eopt.member_stealing = stealing;
  // This bench isolates stealing; speculative duplicates of the slow member
  // would only burn sleeping workers here (the hook slows member 0 for every
  // executor). bench/serve_hedging measures hedging on its own.
  eopt.hedging = false;
  Engine engine(eopt);
  const ModelHandle h = engine.load_parallel("straggler", nl, kMembers);
  // The artificial straggler: member 0 is slow_factor x slower than its
  // siblings. Charged inside the timed region, so it lands in the service
  // EWMA and the member/straggler-gap percentiles like real compute would.
  engine.set_member_hook(
      [base, slow](const std::string&, std::size_t member, bool) {
        std::this_thread::sleep_for(member == 0 ? slow : base);
      });

  const std::size_t lanes = 16;
  constexpr int kWarmup = 8;  // simulator construction, worker wake-up
  Rng rng(17);
  std::vector<bool> bits(nl.num_inputs());
  ModeResult r;
  r.round_us.reserve(static_cast<std::size_t>(rounds));
  for (int round = -kWarmup; round < rounds; ++round) {
    std::vector<std::future<std::vector<bool>>> futs;
    futs.reserve(lanes);
    const auto t0 = SteadyClock::now();
    for (std::size_t i = 0; i < lanes; ++i) {
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      futs.push_back(engine.submit(h, bits));  // 16th submit seals inline
    }
    for (auto& f : futs) f.get();
    if (round < 0) continue;  // warmup: run it, don't record it
    r.round_us.push_back(
        std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
            .count());
  }
  r.p50_us = percentile(r.round_us, 50.0);
  r.p99_us = percentile(r.round_us, 99.0);
  r.report = engine.report();
  engine.set_member_hook(nullptr);
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r) {
  std::cout << name << ":\n"
            << "  batch latency p50 " << std::fixed << std::setprecision(0)
            << r.p50_us << " us, p99 " << r.p99_us << " us\n"
            << "  member runs " << r.report.member_runs << " (stolen "
            << r.report.steals << "), member service p99 "
            << r.report.member_p99_us << " us\n"
            << "  straggler gap p50 " << r.report.straggler_gap_p50_us
            << " us, p99 " << r.report.straggler_gap_p99_us << " us\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const long long rounds_arg = argc > 1 ? std::atoll(argv[1]) : 120;
  const int rounds = rounds_arg > 0 ? static_cast<int>(rounds_arg) : 120;
  const long long base_arg = argc > 2 ? std::atoll(argv[2]) : 2000;
  const auto base = std::chrono::microseconds(base_arg > 0 ? base_arg : 2000);
  const long long factor_arg = argc > 3 ? std::atoll(argv[3]) : 8;
  const auto slow = base * (factor_arg > 1 ? factor_arg : 8);

  Rng gen(13);
  RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_gates = 96;
  spec.num_outputs = 8;  // >= kMembers POs to split across the assembly
  const Netlist nl = random_dag(spec, gen);

  std::cout << kMembers << "-member assembly, member 0 slowed to "
            << slow.count() << " us vs " << base.count()
            << " us siblings, " << rounds << " rounds per mode, "
            << std::thread::hardware_concurrency() << " core(s)\n\n";

  // Acceptance gate, mirrored by CI: hiding the straggler behind its
  // siblings must show up in the tail, and stealing must actually happen.
  // Best-of-two: a single attempt can lose to asymmetric oversleep outliers
  // on a loaded host, a real regression fails both.
  bool ok = false;
  double steal_p50 = 0.0, steal_p99 = 0.0, steal_rps = 0.0;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "gate missed; retrying once (noisy host?)\n\n";
    }
    const ModeResult mono =
        run_mode(/*stealing=*/false, nl, rounds, base, slow);
    print_mode("monolithic dispatch (member_stealing = false)", mono);
    const ModeResult steal =
        run_mode(/*stealing=*/true, nl, rounds, base, slow);
    print_mode("member stealing", steal);

    std::cout << "batch p99: " << std::fixed << std::setprecision(0)
              << mono.p99_us << " -> " << steal.p99_us << " us";
    if (steal.p99_us > 0.0) {
      std::cout << " (" << std::setprecision(2) << mono.p99_us / steal.p99_us
                << "x)";
    }
    std::cout << "\n";
    ok = steal.p99_us < 0.95 * mono.p99_us && steal.report.steals > 0;
    steal_p50 = steal.p50_us;
    steal_p99 = steal.p99_us;
    steal_rps = steal.report.requests_per_sec;
  }
  std::cout << (ok ? "PASS" : "FAIL")
            << ": p99(stealing) < 0.95 x p99(monolithic) and steals > 0\n";
  lbnn::bench::emit_bench_json("serve_stealing", steal_p50, steal_p99,
                               steal_rps, ok);
  return ok ? 0 : 1;
}
