// google-benchmark micro-benchmarks of the compiler kernels: optimization,
// path balancing, MFG partitioning/merging, scheduling, and the full
// compile() pipeline across circuit sizes.

#include <benchmark/benchmark.h>

#include "core/compiler.hpp"
#include "core/mfg.hpp"
#include "core/schedule.hpp"
#include "netlist/random_circuits.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace {

using namespace lbnn;

Netlist make_grid(std::int64_t width, std::int64_t layers) {
  Rng rng(42);
  return reconvergent_grid(static_cast<std::size_t>(width),
                           static_cast<std::size_t>(layers), rng);
}

Netlist prepared(const Netlist& nl) {
  return balance_paths(eliminate_dead(tech_map(optimize(nl), CellLibrary::lut4_full())));
}

void BM_Optimize(benchmark::State& state) {
  RandomCircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_gates = static_cast<std::size_t>(state.range(0));
  spec.num_outputs = 8;
  Rng rng(1);
  const Netlist nl = random_dag(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize(nl));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Optimize)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PathBalance(benchmark::State& state) {
  const Netlist nl = make_grid(state.range(0), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance_paths(nl));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nl.num_gates()));
}
BENCHMARK(BM_PathBalance)->Arg(32)->Arg(128)->Arg(512);

void BM_Partition(benchmark::State& state) {
  const Netlist nl = prepared(make_grid(state.range(0), 12));
  PartitionOptions opt;
  opt.m = 16;
  opt.band = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition(nl, opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nl.num_gates()));
}
BENCHMARK(BM_Partition)->Arg(32)->Arg(128)->Arg(512);

void BM_Merge(benchmark::State& state) {
  const Netlist nl = prepared(make_grid(state.range(0), 12));
  PartitionOptions opt;
  opt.m = 16;
  opt.band = 16;
  for (auto _ : state) {
    state.PauseTiming();
    MfgForest forest = partition(nl, opt);
    state.ResumeTiming();
    benchmark::DoNotOptimize(merge_mfgs(forest, opt.m));
  }
}
BENCHMARK(BM_Merge)->Arg(32)->Arg(128);

void BM_Schedule(benchmark::State& state) {
  const Netlist nl = prepared(make_grid(state.range(0), 12));
  PartitionOptions opt;
  opt.m = 16;
  opt.band = 16;
  MfgForest forest = partition(nl, opt);
  merge_mfgs(forest, opt.m);
  LpuConfig cfg;
  cfg.m = 16;
  cfg.n = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule(forest, cfg, SharingMode::kShared));
  }
}
BENCHMARK(BM_Schedule)->Arg(32)->Arg(128);

void BM_FullCompile(benchmark::State& state) {
  const Netlist nl = make_grid(state.range(0), 12);
  CompileOptions opt;
  opt.lpu.m = 16;
  opt.lpu.n = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compile(nl, opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(nl.num_gates()));
}
BENCHMARK(BM_FullCompile)->Arg(32)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
