// Overload behavior with deadline-aware admission shedding vs naive
// queue-full admission, at ~2x the engine's sustainable load.
//
//   $ ./serve_overload [ms_per_mode] [slo_us]
//
// Both modes drive the same open-loop arrival process (paced try_submit; an
// open-loop client never slows down for the server, which is what real
// overload looks like) against the same model, queue bound, and SLO:
//
//   no-shedding   requests carry NO engine deadline; admission only rejects
//                 at queue-full. Every accepted request is simulated, however
//                 stale; whether it made the SLO is judged client-side from
//                 its measured latency.
//   shedding      requests carry deadline = now + SLO. Admission rejects
//                 kDeadlineUnmeetable as soon as the queue's estimated drain
//                 time exceeds the SLO (in microseconds, not after queueing),
//                 and workers drop already-expired requests at dequeue
//                 instead of simulating dead work.
//
// The claim under test (ISSUE 3 acceptance): goodput (on-SLO completions/s)
// with shedding >= the no-shedding baseline, while a rejected request learns
// its fate in < 1 ms (median) instead of occupying a lane until it times out.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using SteadyClock = std::chrono::steady_clock;

EngineOptions engine_options() {
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.batch_timeout = std::chrono::microseconds(200);
  eopt.compile.lpu.m = 8;  // 16-lane words
  eopt.compile.lpu.n = 8;
  // This bench isolates the ADMISSION POLICY (deadline shedding vs plain
  // queue-full backpressure), not executor speed. With the bit-sliced
  // kernel a member runs in ~10-20us, and on the 1-core CI container the
  // scheduler timeslice — which the EWMA drain estimate cannot see — then
  // dominates SLO outcomes, turning the shedding-vs-baseline ratio into
  // noise around 1.0x. Pin the scalar executor so queue drain stays the
  // deciding factor on both sides of the comparison; serve_simd gates the
  // kernel speedup itself.
  eopt.simd = false;
  return eopt;
}

/// Closed-loop calibration: saturate the engine briefly and take the
/// completion rate as "sustainable" capacity.
double measure_sustainable_rps(const Netlist& nl) {
  Engine engine(engine_options());
  ModelOptions mopt;
  mopt.queue_bound = 8 * 16;
  const ModelHandle h = engine.load("calib", nl, mopt);
  Rng rng(7);
  std::vector<bool> bits(nl.num_inputs());
  constexpr int kRequests = 2048;
  const auto t0 = SteadyClock::now();
  std::vector<std::future<std::vector<bool>>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
    futs.push_back(engine.submit(h, bits));  // blocking: backpressure paces us
  }
  engine.drain();
  const double secs = std::chrono::duration<double>(SteadyClock::now() - t0).count();
  for (auto& f : futs) f.get();
  return static_cast<double>(kRequests) / secs;
}

struct ModeResult {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;       ///< queue-full or deadline-unmeetable
  std::uint64_t on_slo = 0;         ///< completions within the SLO
  std::uint64_t late_or_dead = 0;   ///< completed late, or expired in queue
  double goodput_per_sec = 0.0;
  double median_reject_us = 0.0;    ///< latency of learning "no"
  ServeReport report;
};

ModeResult run_mode(bool shedding, const Netlist& nl, double offered_rps,
                    std::chrono::milliseconds run_for,
                    std::chrono::microseconds slo) {
  Engine engine(engine_options());
  ModelOptions mopt;
  mopt.queue_bound = 16 * 16;  // deep enough that queueing alone busts the SLO
  const ModelHandle h = engine.load("overload", nl, mopt);

  struct InFlight {
    std::future<std::vector<bool>> future;
    SteadyClock::time_point submitted;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> in_flight;  // deque: stable references across pushes
  bool generator_done = false;
  std::vector<double> reject_us;
  ModeResult r;

  // Joiner: consumes accepted futures in submission order (one model, one
  // FIFO-ish pipeline) and stamps the completion the moment get() returns —
  // on-SLO classification happens live, not in a post-drain audit. In
  // shedding mode the engine already failed expired requests with
  // DeadlineExceeded; in baseline mode "late" is judged from latency.
  std::thread joiner([&] {
    std::size_t idx = 0;
    for (;;) {
      InFlight* item = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return idx < in_flight.size() || generator_done; });
        if (idx >= in_flight.size()) break;  // generator done and drained
        item = &in_flight[idx++];
      }
      try {
        item->future.get();
        const auto latency = SteadyClock::now() - item->submitted;
        if (latency <= slo) {
          ++r.on_slo;
        } else {
          ++r.late_or_dead;
        }
      } catch (const DeadlineExceeded&) {
        ++r.late_or_dead;  // dropped at dequeue: no simulator work was spent
      } catch (const Error&) {
        ++r.late_or_dead;
      }
    }
  });

  // Open-loop generator: fixed interarrival regardless of server state.
  const auto interarrival =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  Rng rng(11);
  std::vector<bool> bits(nl.num_inputs());
  const auto t_start = SteadyClock::now();
  const auto t_end = t_start + run_for;
  auto next_fire = t_start;
  while (SteadyClock::now() < t_end) {
    if (SteadyClock::now() < next_fire) {
      std::this_thread::yield();  // us-scale gaps: pace without oversleeping
      continue;
    }
    next_fire += interarrival;
    for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
    ++r.offered;
    const auto t0 = SteadyClock::now();
    std::future<std::vector<bool>> fut;
    const SubmitStatus st = shedding
                                ? engine.try_submit(h, bits, &fut, t0 + slo)
                                : engine.try_submit(h, bits, &fut);
    if (st == SubmitStatus::kAccepted) {
      ++r.accepted;
      {
        std::lock_guard<std::mutex> lk(mu);
        in_flight.push_back({std::move(fut), t0});
      }
      cv.notify_one();
    } else {
      ++r.rejected;
      reject_us.push_back(std::chrono::duration<double, std::micro>(
                              SteadyClock::now() - t0)
                              .count());
    }
  }
  engine.drain();
  const double wall =
      std::chrono::duration<double>(SteadyClock::now() - t_start).count();
  {
    std::lock_guard<std::mutex> lk(mu);
    generator_done = true;
  }
  cv.notify_all();
  joiner.join();
  r.goodput_per_sec = static_cast<double>(r.on_slo) / wall;
  if (!reject_us.empty()) {
    std::sort(reject_us.begin(), reject_us.end());
    r.median_reject_us = reject_us[reject_us.size() / 2];
  }
  r.report = engine.report();
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r,
                std::chrono::microseconds slo) {
  std::cout << name << ":\n"
            << "  offered " << r.offered << ", accepted " << r.accepted
            << ", rejected " << r.rejected << " (shed "
            << r.report.shed << ", expired-in-queue " << r.report.expired
            << ")\n"
            << "  on-SLO(" << slo.count() << "us) completions " << r.on_slo
            << ", late/dead " << r.late_or_dead << "\n"
            << "  goodput " << std::fixed << std::setprecision(0)
            << r.goodput_per_sec << " req/s";
  if (r.rejected > 0) {
    std::cout << ", median rejection latency " << std::setprecision(1)
              << r.median_reject_us << " us";
  }
  std::cout << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested_ms = argc > 1 ? std::atoll(argv[1]) : 400;
  const auto run_for =
      std::chrono::milliseconds(requested_ms > 0 ? requested_ms : 400);

  Rng gen(9);
  const Netlist nl = reconvergent_grid(48, 12, gen);

  const double sustainable = measure_sustainable_rps(nl);
  const double offered = 2.0 * sustainable;
  // Default SLO: ~8 batches of service at the calibrated rate — tight enough
  // that a full queue (16 batches) busts it, loose enough that freshly
  // admitted work makes it comfortably.
  const long long slo_arg = argc > 2 ? std::atoll(argv[2]) : 0;
  const auto slo = std::chrono::microseconds(
      slo_arg > 0 ? slo_arg
                  : static_cast<long long>(8.0 * 16.0 * 1e6 / sustainable));

  std::cout << "sustainable ~" << std::fixed << std::setprecision(0)
            << sustainable << " req/s; offering 2x (" << offered
            << " req/s) for " << run_for.count() << " ms per mode, SLO "
            << slo.count() << " us, "
            << std::thread::hardware_concurrency() << " core(s)\n\n";

  // Acceptance gate, mirrored by CI: shedding must not cost goodput, and
  // saying "no" must be microsecond-cheap. Best-of-two attempts, same as
  // the other serving benches: on a loaded 1-core host one attempt can
  // lose to preemption landing in one mode's window; a real regression
  // fails twice.
  bool ok = false;
  ModeResult shed;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "\ngate missed; retrying once (noisy host?)\n\n";
    }
    const ModeResult base = run_mode(false, nl, offered, run_for, slo);
    print_mode("no-shedding (queue-full only)", base, slo);
    shed = run_mode(true, nl, offered, run_for, slo);
    print_mode("shedding (deadline-aware admission)", shed, slo);

    std::cout << "goodput: " << std::setprecision(0) << base.goodput_per_sec
              << " -> " << shed.goodput_per_sec << " req/s";
    if (base.goodput_per_sec > 0.0) {
      std::cout << " (" << std::setprecision(2)
                << shed.goodput_per_sec / base.goodput_per_sec << "x)";
    }
    std::cout << "\nrejection latency (median): ";
    if (shed.rejected > 0) {
      std::cout << std::setprecision(1) << shed.median_reject_us
                << " us with shedding vs the SLO-busting queue wait without";
    } else {
      std::cout << "n/a (nothing rejected)";
    }
    std::cout << "\n";
    ok = shed.goodput_per_sec >= 0.95 * base.goodput_per_sec &&
         (shed.rejected == 0 || shed.median_reject_us < 1000.0);
  }
  std::cout << (ok ? "PASS" : "FAIL")
            << ": goodput(shedding) >= goodput(baseline) and median "
               "rejection < 1 ms\n";
  lbnn::bench::emit_bench_json("serve_overload",
                               static_cast<double>(shed.report.p50_latency_us),
                               static_cast<double>(shed.report.p99_latency_us),
                               shed.goodput_per_sec, ok);
  return ok ? 0 : 1;
}
