// Reproduces Table II: FPS comparison between MAC-based, NullaDSP,
// XNOR-based, and LPU implementations of the high-accuracy models
// (VGG16, LENET5, MLPMixer-S/4, MLPMixer-B/4). LPV count = 16.
//
// The LPU column is *measured*: every layer's FFCL workload is compiled with
// this repository's compiler and the steady-state schedule length scaled to
// the full layer dimensions (EXPERIMENTS.md). Baseline columns show our
// structural model's estimate with the published figure the paper quotes in
// parentheses. Expected shape: LPU >> XNOR > NullaDSP > MAC on every row.

#include <iomanip>
#include <iostream>

#include "baselines/baseline_models.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::baselines;
  using bench::fps_str;

  const LpuConfig lpu = bench::paper_lpu();
  CompileOptions copts;
  copts.lpu = lpu;
  const nn::SynthOptions synth = bench::tiny_synth();

  std::cout << "TABLE II: FPS comparison, high-accuracy models (LPV count = 16)\n";
  std::cout << "baselines: modeled (published); LPU: measured on compiled "
               "schedules (published)\n\n";
  std::cout << std::left << std::setw(14) << "Model" << std::right
            << std::setw(18) << "MAC" << std::setw(20) << "NullaDSP"
            << std::setw(18) << "XNOR" << std::setw(24) << "LPU\n";
  bench::print_rule(94);

  const std::vector<nn::ModelDesc> models = {nn::vgg16(), nn::lenet5(),
                                             nn::mlpmixer_s4(), nn::mlpmixer_b4()};
  double lpu_vs_xnor_vgg = 0;
  for (const auto& model : models) {
    const auto mac = mac_array(model);
    const auto dsp = nulla_dsp(model);
    const auto xnor = xnor_finn(model);

    const auto layers = compile_model_layers(model, synth, copts, 2024);
    const double lpu_fps = lpu_frames_per_second(layers, lpu);
    if (model.name == "VGG16") lpu_vs_xnor_vgg = lpu_fps / xnor.fps_model;

    const auto cell = [](const BaselineEstimate& e) {
      std::string s = fps_str(e.fps_model);
      if (e.fps_published) s += " (" + fps_str(*e.fps_published) + ")";
      return s;
    };
    std::string lpu_cell = fps_str(lpu_fps);
    if (const auto pub = lpu_published(model.name)) {
      lpu_cell += " (" + fps_str(*pub) + ")";
    }
    std::cout << std::left << std::setw(14) << model.name << std::right
              << std::setw(18) << cell(mac) << std::setw(20) << cell(dsp)
              << std::setw(18) << cell(xnor) << std::setw(24) << lpu_cell << "\n";
  }
  bench::print_rule(94);
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "shape check: measured LPU / modeled XNOR on VGG16 = "
            << lpu_vs_xnor_vgg << "x (paper: 25x pre-merging, ~125x with "
            << "merging; see EXPERIMENTS.md for the scaling notes)\n";
  return 0;
}
