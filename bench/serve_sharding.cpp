// Multi-engine sharding: an 8-shard Router vs 8 statically-pinned isolated
// engines, under a Zipf-skewed multi-model mix.
//
//   $ ./serve_sharding [ms_per_mode] [slo_us]
//
// Both modes drive the SAME deterministic open-loop arrival process (paced
// try_submit, Zipf model popularity from bench_common's ZipfPicker) against
// the same 8 models with the same per-request SLO deadline:
//
//   isolated   8 independent 1-worker engines; model m is pinned to engine
//              m % 8. The classic static-sharding deployment: no routing
//              layer, no cross-shard decisions, but also no way to move load.
//   router     one Router over 8 in-process 1-worker shards, every model at 1
//              replica (same placement as the static pin), dispatch through
//              power-of-two-choices over the shards' admission probes.
//
// The claim under test (ISSUE 7 acceptance): the routing layer is not a tax —
// aggregate router goodput >= 0.95x the isolated sum — and a scripted replica
// add/retire cycle (1 -> 4 -> 1 replicas on the hottest model, while an
// open-loop generator keeps submitting) completes with ZERO dropped in-flight
// requests: every accepted future resolves with a value, because a retiring
// replica leaves the routing set before its drain begins.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/random_circuits.hpp"
#include "router/router.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using lbnn::bench::ZipfPicker;
using SteadyClock = std::chrono::steady_clock;

constexpr std::size_t kShards = 8;
constexpr std::size_t kModels = 8;
constexpr double kZipfS = 1.0;

EngineOptions shard_options() {
  EngineOptions eopt;
  eopt.num_workers = 1;  // per shard; the fleet's parallelism IS the shards
  eopt.batch_timeout = std::chrono::microseconds(200);
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  return eopt;
}

std::vector<Netlist> make_models() {
  std::vector<Netlist> nls;
  nls.reserve(kModels);
  for (std::size_t m = 0; m < kModels; ++m) {
    Rng gen(100 + m);
    nls.push_back(reconvergent_grid(32, 8, gen));
  }
  return nls;
}

/// Closed-loop calibration on one shard-sized engine: its sustainable rate,
/// times kShards, bounds what the fleet can absorb.
double per_shard_sustainable_rps(const Netlist& nl) {
  Engine engine(shard_options());
  ModelOptions mopt;
  mopt.queue_bound = 8 * 16;
  const ModelHandle h = engine.load("calib", nl, mopt);
  Rng rng(7);
  std::vector<bool> bits(nl.num_inputs());
  constexpr int kRequests = 1024;
  const auto t0 = SteadyClock::now();
  for (int i = 0; i < kRequests; ++i) {
    for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
    engine.submit(h, bits);
  }
  engine.drain();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  return static_cast<double>(kRequests) / secs;
}

/// One request's admission outcome, routed by either topology.
using SubmitFn = std::function<SubmitStatus(
    std::size_t model, const std::vector<bool>& bits,
    std::future<std::vector<bool>>* fut, TimePoint deadline)>;

struct ModeResult {
  std::uint64_t offered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t on_slo = 0;
  std::uint64_t late_or_dead = 0;
  double goodput_per_sec = 0.0;
};

/// The shared open-loop driver: identical arrivals (same Rng seeds, same Zipf
/// stream, same pacing) regardless of which topology answers them.
ModeResult run_mode(const SubmitFn& submit, const std::function<void()>& drain,
                    const std::vector<Netlist>& nls, double offered_rps,
                    std::chrono::milliseconds run_for,
                    std::chrono::microseconds slo) {
  struct InFlight {
    std::future<std::vector<bool>> future;
    SteadyClock::time_point submitted;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> in_flight;
  bool generator_done = false;
  ModeResult r;

  std::thread joiner([&] {
    std::size_t idx = 0;
    for (;;) {
      InFlight* item = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return idx < in_flight.size() || generator_done; });
        if (idx >= in_flight.size()) break;
        item = &in_flight[idx++];
      }
      try {
        item->future.get();
        const auto latency = SteadyClock::now() - item->submitted;
        if (latency <= slo) {
          ++r.on_slo;
        } else {
          ++r.late_or_dead;
        }
      } catch (const Error&) {
        ++r.late_or_dead;  // expired in queue
      }
    }
  });

  const auto interarrival =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  ZipfPicker zipf(kModels, kZipfS);
  Rng pick_rng(21);
  Rng bit_rng(22);
  const auto t_start = SteadyClock::now();
  const auto t_end = t_start + run_for;
  auto next_fire = t_start;
  while (SteadyClock::now() < t_end) {
    if (SteadyClock::now() < next_fire) {
      std::this_thread::yield();
      continue;
    }
    next_fire += interarrival;
    const std::size_t m = zipf.pick(pick_rng);
    std::vector<bool> bits(nls[m].num_inputs());
    for (std::size_t pi = 0; pi < bits.size(); ++pi) {
      bits[pi] = bit_rng.next_bool();
    }
    ++r.offered;
    const auto t0 = SteadyClock::now();
    std::future<std::vector<bool>> fut;
    if (submit(m, bits, &fut, t0 + slo) == SubmitStatus::kAccepted) {
      ++r.accepted;
      {
        std::lock_guard<std::mutex> lk(mu);
        in_flight.push_back({std::move(fut), t0});
      }
      cv.notify_one();
    } else {
      ++r.rejected;
    }
  }
  drain();
  const double wall =
      std::chrono::duration<double>(SteadyClock::now() - t_start).count();
  {
    std::lock_guard<std::mutex> lk(mu);
    generator_done = true;
  }
  cv.notify_all();
  joiner.join();
  r.goodput_per_sec = static_cast<double>(r.on_slo) / wall;
  return r;
}

void print_mode(const char* name, const ModeResult& r) {
  std::cout << name << ": offered " << r.offered << ", accepted " << r.accepted
            << ", rejected " << r.rejected << ", on-SLO " << r.on_slo
            << ", late/dead " << r.late_or_dead << ", goodput " << std::fixed
            << std::setprecision(0) << r.goodput_per_sec << " req/s\n";
}

/// Scripted elasticity cycle: scale the hottest model 1 -> 4 -> 1 replicas
/// while a generator keeps submitting (deadline-less, so every accepted
/// future MUST resolve with a value). Returns the number of accepted requests
/// that failed — the gate demands exactly zero.
std::uint64_t replica_cycle(lbnn::router::Router& router,
                            const lbnn::router::RoutedHandle& hot,
                            std::size_t num_inputs) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failed{0};
  std::uint64_t accepted = 0;
  std::vector<std::future<std::vector<bool>>> futures;
  std::thread generator([&] {
    Rng rng(31);
    std::vector<bool> bits(num_inputs);
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t pi = 0; pi < bits.size(); ++pi) {
        bits[pi] = rng.next_bool();
      }
      std::future<std::vector<bool>> fut;
      if (router.try_submit(hot, bits, &fut) == SubmitStatus::kAccepted) {
        ++accepted;
        futures.push_back(std::move(fut));
      } else {
        std::this_thread::yield();  // queue-full backoff
      }
    }
  });
  router.set_replicas(hot, 4);
  const std::size_t grown = router.replicas(hot);
  router.set_replicas(hot, 1);
  const std::size_t shrunk = router.replicas(hot);
  stop.store(true, std::memory_order_release);
  generator.join();
  router.drain();
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const Error&) {
      failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::cout << "replica cycle: " << accepted << " accepted across 1 -> "
            << grown << " -> " << shrunk << " replicas, "
            << failed.load() << " dropped\n";
  if (grown != 4 || shrunk != 1) failed.fetch_add(1);  // scale must take
  return failed.load();
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested_ms = argc > 1 ? std::atoll(argv[1]) : 400;
  const auto run_for =
      std::chrono::milliseconds(requested_ms > 0 ? requested_ms : 400);

  const std::vector<Netlist> nls = make_models();
  const double per_shard = per_shard_sustainable_rps(nls[0]);
  // Offered: ~25% of the fleet's aggregate capacity. Shards beyond the
  // machine's cores time-share rather than add capacity (the calibration ran
  // one shard with the whole machine to itself), so the fleet multiplier is
  // min(shards, cores). Deliberately below the saturation cliff: at the
  // cliff, goodput is chaotic (whether admission sheds in time decides
  // everything) and a 0.95x gate would measure luck, not the routing layer.
  // Below it, goodput ~= accepted rate and the comparison isolates the
  // router's per-request overhead — which is the claim under test. The Zipf
  // skew still concentrates ~35% of traffic on the hot model's shard.
  const double parallelism = static_cast<double>(std::min<std::size_t>(
      kShards, std::max(1u, std::thread::hardware_concurrency())));
  const double offered = 0.25 * per_shard * parallelism;
  const long long slo_arg = argc > 2 ? std::atoll(argv[2]) : 0;
  const auto slo = std::chrono::microseconds(
      slo_arg > 0 ? slo_arg
                  : static_cast<long long>(64.0 * 16.0 * 1e6 / per_shard));

  std::cout << "per-shard sustainable ~" << std::fixed << std::setprecision(0)
            << per_shard << " req/s; offering " << offered << " req/s ("
            << kModels << " models, Zipf s=" << std::setprecision(1) << kZipfS
            << ") for " << run_for.count() << " ms per mode, SLO "
            << slo.count() << " us\n\n";

  ModelOptions mopt;
  mopt.queue_bound = 16 * 16;
  ModeResult isolated;
  {
    // Static sharding: engine per shard, model m pinned to engine m % 8.
    std::vector<std::unique_ptr<Engine>> engines;
    std::vector<ModelHandle> handles;
    for (std::size_t i = 0; i < kShards; ++i) {
      engines.push_back(std::make_unique<Engine>(shard_options()));
    }
    for (std::size_t m = 0; m < kModels; ++m) {
      handles.push_back(
          engines[m % kShards]->load("model" + std::to_string(m), nls[m], mopt));
    }
    isolated = run_mode(
        [&](std::size_t m, const std::vector<bool>& bits,
            std::future<std::vector<bool>>* fut, TimePoint deadline) {
          return engines[m % kShards]->try_submit(handles[m], bits, fut,
                                                  deadline);
        },
        [&] {
          for (auto& e : engines) e->drain();
        },
        nls, offered, run_for, slo);
    print_mode("isolated (static pin)", isolated);
  }

  ModeResult routed;
  std::uint64_t cycle_failures = 0;
  {
    lbnn::router::RouterOptions ropt;
    ropt.num_shards = kShards;
    ropt.engine = shard_options();
    ropt.initial_replicas = 1;  // same placement budget as the static pin
    lbnn::router::Router router(ropt);
    std::vector<lbnn::router::RoutedHandle> handles;
    for (std::size_t m = 0; m < kModels; ++m) {
      handles.push_back(
          router.load("model" + std::to_string(m), nls[m], mopt));
    }
    routed = run_mode(
        [&](std::size_t m, const std::vector<bool>& bits,
            std::future<std::vector<bool>>* fut, TimePoint deadline) {
          return router.try_submit(handles[m], bits, fut, deadline);
        },
        [&] { router.drain(); }, nls, offered, run_for, slo);
    print_mode("router (8 shards, p2c)", routed);

    cycle_failures = replica_cycle(router, handles[0], nls[0].num_inputs());
    router.shutdown();
  }

  std::cout << "\naggregate goodput: isolated " << std::setprecision(0)
            << isolated.goodput_per_sec << " req/s, router "
            << routed.goodput_per_sec << " req/s";
  if (isolated.goodput_per_sec > 0.0) {
    std::cout << " (" << std::setprecision(2)
              << routed.goodput_per_sec / isolated.goodput_per_sec << "x)";
  }
  std::cout << "\n";
  // Acceptance gate, mirrored by CI: routing must not tax aggregate goodput,
  // and elasticity must never drop accepted work.
  const bool ok =
      routed.goodput_per_sec >= 0.95 * isolated.goodput_per_sec &&
      cycle_failures == 0;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": router goodput >= 0.95x isolated sum and replica cycle "
               "dropped nothing\n";
  lbnn::bench::emit_bench_json("serve_sharding", 0.0, 0.0,
                               routed.goodput_per_sec, ok);
  return ok ? 0 : 1;
}
