// Versioned hot-swap correctness gate: a scripted 0% -> 25% -> 100% canary
// rollout under live traffic, with a zero-drop / bit-exactness audit.
//
//   $ ./serve_canary [requests]
//
// One generator thread pushes every request through the alias ("jsc@prod")
// while the main thread runs the rollout script against it mid-stream:
// publish v1, stage v2 at 0%, open the split to 25%, then flip to 100%.
// v1 and v2 are the same zoo netlist loaded under two names, so (a) the
// second load must dedup in the program cache (versions share compiled
// programs), and (b) a SINGLE-version scalar simulation is the oracle for
// every phase — any dropped, double-resolved, or misrouted future shows up
// as a missing/ready-twice/wrong-bits entry in the audit. After the flip,
// evict_idle reaps the idle v1 while the freshly-used v2 survives.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/simulate.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "serve/alias.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using lbnn::serve::AliasReport;
using lbnn::serve::AliasTable;
using SteadyClock = std::chrono::steady_clock;

bool check(bool cond, const char* what, int& failures) {
  if (!cond) {
    std::cout << "CHECK FAILED: " << what << "\n";
    ++failures;
  }
  return cond;
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested = argc > 1 ? std::atoll(argv[1]) : 3000;
  const std::size_t kRequests =
      static_cast<std::size_t>(requested > 0 ? requested : 3000);

  const nn::ModelDesc desc = nn::jsc_m();
  Rng rng(43);
  const Netlist nl =
      nn::synthesize_layer_ffcl(desc.layers[0], bench::tiny_synth(), rng).ffcl;

  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.batch_timeout = std::chrono::microseconds(200);
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  Engine engine(eopt);
  ModelOptions mopt;
  mopt.queue_bound = 8 * 16;
  const ModelHandle v1 = engine.load("jsc_v1", nl, mopt);
  const ModelHandle v2 = engine.load("jsc_v2", nl, mopt);

  int failures = 0;
  // Loading v2 next to v1 must reuse v1's compiled program, not recompile.
  const CacheStats cs = engine.cache_stats();
  check(cs.entries == 1, "versions share one ProgramCache entry", failures);
  check(cs.hits >= 1, "v2 load hit the program cache", failures);

  AliasTable table(engine);
  table.publish("jsc@prod", v1);
  table.set_canary("jsc@prod", v2, 0, 1);  // staged dark: 0% of traffic

  // The oracle: a fixed pool of inputs with single-version expected outputs
  // (v1 and v2 are the same netlist — every phase must reproduce these bits).
  constexpr std::size_t kPool = 64;
  std::vector<std::vector<bool>> pool(kPool);
  std::vector<std::vector<bool>> want(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    pool[i].resize(nl.num_inputs());
    for (std::size_t j = 0; j < pool[i].size(); ++j) pool[i][j] = rng.next_bool();
    want[i] = simulate_scalar(nl, pool[i]);
  }

  std::vector<std::future<std::vector<bool>>> futs(kRequests);
  std::atomic<std::size_t> submitted{0};
  const auto t_start = SteadyClock::now();
  std::thread generator([&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      futs[i] = table.submit("jsc@prod", pool[i % kPool]);
      submitted.store(i + 1, std::memory_order_release);
    }
  });

  // The rollout script, applied mid-stream at the phase boundaries.
  while (submitted.load(std::memory_order_acquire) < kRequests / 3) {
    std::this_thread::yield();
  }
  const AliasReport dark = table.report("jsc@prod");
  check(dark.to_canary == 0, "0% stage sends v2 nothing", failures);
  table.set_split("jsc@prod", 1, 3);  // 25%
  engine.set_weight(v2, 1);           // matching QoS share for the canary

  while (submitted.load(std::memory_order_acquire) < 2 * kRequests / 3) {
    std::this_thread::yield();
  }
  const AliasReport staged = table.report("jsc@prod");
  const auto t_flip = SteadyClock::now();
  const ModelHandle old = table.flip("jsc@prod");  // 100%
  check(old.name() == "jsc_v1", "flip returns the old primary", failures);
  check(table.resolve("jsc@prod").name() == "jsc_v2", "alias repointed",
        failures);

  generator.join();
  engine.drain();
  const double wall =
      std::chrono::duration<double>(SteadyClock::now() - t_start).count();

  // The audit: every submitted future resolved, exactly once, bit-exactly.
  std::size_t ready = 0;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (!futs[i].valid() ||
        futs[i].wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      continue;  // dropped — counted by the ready check below
    }
    ++ready;
    if (futs[i].get() == want[i % kPool]) ++exact;
  }
  check(ready == kRequests, "zero dropped futures across the rollout",
        failures);
  check(exact == kRequests, "every phase bit-exact vs the one-version oracle",
        failures);

  const AliasReport rep = table.report("jsc@prod");
  check(rep.submitted == kRequests, "alias ledger covers every request",
        failures);
  check(rep.to_primary + rep.to_canary == rep.submitted,
        "every request routed exactly once", failures);
  check(rep.flips == 1, "one flip recorded", failures);
  check(staged.to_canary > 0,
        "the 25% stage actually sent the canary traffic", failures);

  // Reap the old version: v1 has been idle since the flip; one fresh request
  // re-stamps v2 so half the flip-to-now gap evicts exactly one of them.
  auto touch = table.submit("jsc@prod", pool[1]);
  engine.drain();
  check(touch.get() == want[1], "keep-warm request served by v2", failures);
  const auto idle = SteadyClock::now() - t_flip;
  const std::size_t evicted = engine.evict_idle(idle / 2);
  check(evicted == 1, "evict_idle reaps exactly the old version", failures);
  check(!v1.loaded(), "v1 unloaded", failures);
  check(v2.loaded(), "v2 still serving", failures);
  auto post = table.submit("jsc@prod", pool[0]);
  engine.drain();
  check(post.get() == want[0], "alias serves after the reap", failures);

  const ServeReport srep = engine.report();
  std::cout << kRequests << " requests through the rollout in " << std::fixed
            << std::setprecision(3) << wall << " s ("
            << std::setprecision(0) << static_cast<double>(kRequests) / wall
            << " req/s); split " << rep.to_primary << " primary / "
            << rep.to_canary << " canary; 0% -> 25% -> flip -> reap\n";

  const bool ok = failures == 0;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": zero-drop, bit-exact scripted rollout with dedup load and "
               "idle reap\n";
  lbnn::bench::emit_bench_json("serve_canary",
                               static_cast<double>(srep.p50_latency_us),
                               static_cast<double>(srep.p99_latency_us),
                               static_cast<double>(kRequests) / wall, ok);
  return ok ? 0 : 1;
}
