// Multi-model fairness: one heavy model saturating the engine vs N light
// models with latency-sensitive traffic, under the two scheduling policies:
//
//   global-fifo     the PR 1 baseline — one global ready queue, so every
//                   light batch waits behind the heavy model's whole backlog
//   weighted-fair   per-model queues + stride scheduling (API v2 default) —
//                   a light batch is dispatched as soon as a worker frees,
//                   regardless of how deep the heavy backlog is
//
//   $ ./serve_fairness [ms_per_mode]
//
// The isolation win shows up as the light models' p99 latency dropping by
// roughly the heavy backlog depth (queue bound / lanes). Absolute numbers
// depend on the host; on the 1-core dev container both modes serialize onto
// one worker, which COMPRESSES the gap — run on a multi-core host for the
// full effect.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "netlist/random_circuits.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;

constexpr int kLightModels = 3;

struct ModeResult {
  ServeReport report;
};

ModeResult run_mode(EngineOptions::Scheduling mode, const Netlist& heavy_nl,
                    const std::vector<Netlist>& light_nls,
                    std::chrono::milliseconds run_for) {
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.batch_timeout = std::chrono::microseconds(200);
  eopt.compile.lpu.m = 8;  // 16-lane words: quick compiles, busy batches
  eopt.compile.lpu.n = 8;
  eopt.scheduling = mode;
  Engine engine(eopt);

  ModelOptions heavy_opt;
  heavy_opt.weight = 1;
  // A standing backlog of ~8 batches: this is exactly the queue a light
  // batch would have to wait behind under global FIFO.
  heavy_opt.queue_bound = 8 * 16;
  const ModelHandle heavy = engine.load("heavy", heavy_nl, heavy_opt);
  std::vector<ModelHandle> lights;
  for (int i = 0; i < kLightModels; ++i) {
    ModelOptions light_opt;
    light_opt.weight = 8;
    lights.push_back(
        engine.load("light-" + std::to_string(i), light_nls[i], light_opt));
  }

  std::atomic<bool> stop{false};
  // Saturator: blocking submits keep the heavy queue pinned at its bound.
  std::thread saturator([&] {
    Rng rng(17);
    std::vector<bool> bits(heavy_nl.num_inputs());
    while (!stop.load()) {
      for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = rng.next_bool();
      try {
        engine.submit(heavy, bits);
      } catch (const Error&) {
        break;  // engine shutting down
      }
    }
  });
  // Light clients: one outstanding request each (latency-sensitive RPC
  // shape); the request->result time lands in the per-model histogram.
  std::vector<std::thread> clients;
  for (int i = 0; i < kLightModels; ++i) {
    clients.emplace_back([&, i] {
      std::vector<bool> bits(light_nls[i].num_inputs(), i % 2 != 0);
      while (!stop.load()) {
        try {
          engine.submit(lights[i], bits).get();
        } catch (const Error&) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }

  std::this_thread::sleep_for(run_for);
  stop.store(true);
  saturator.join();
  for (auto& c : clients) c.join();
  engine.drain();
  ModeResult r;
  r.report = engine.report();
  engine.shutdown();
  return r;
}

const char* mode_name(EngineOptions::Scheduling mode) {
  return mode == EngineOptions::Scheduling::kGlobalFifo ? "global-fifo"
                                                        : "weighted-fair";
}

void print_mode(EngineOptions::Scheduling mode, const ModeResult& r) {
  std::cout << mode_name(mode) << ":\n";
  std::cout << std::left << std::setw(12) << "  model" << std::right
            << std::setw(8) << "weight" << std::setw(10) << "reqs"
            << std::setw(10) << "p50us" << std::setw(10) << "p99us"
            << std::setw(9) << "q-hwm" << "\n";
  for (const ModelReport& m : r.report.per_model) {
    std::cout << "  " << std::left << std::setw(10) << m.name << std::right
              << std::setw(8) << m.weight << std::setw(10) << m.requests
              << std::setw(10) << m.p50_latency_us << std::setw(10)
              << m.p99_latency_us << std::setw(9) << m.queue_depth_hwm << "\n";
  }
  std::cout << "\n";
}

std::uint64_t worst_light_p99(const ModeResult& r) {
  std::uint64_t worst = 0;
  for (const ModelReport& m : r.report.per_model) {
    if (m.name.rfind("light", 0) == 0 && m.p99_latency_us > worst) {
      worst = m.p99_latency_us;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested = argc > 1 ? std::atoll(argv[1]) : 400;
  const auto run_for =
      std::chrono::milliseconds(requested > 0 ? requested : 400);

  Rng gen(5);
  // Heavy: a deep grid whose batches occupy a worker for a while. Light:
  // small distinct circuits (distinct fingerprints — no cache aliasing).
  const Netlist heavy_nl = reconvergent_grid(64, 16, gen);
  std::vector<Netlist> light_nls;
  for (int i = 0; i < kLightModels; ++i) {
    light_nls.push_back(reconvergent_grid(8, 4 + i, gen));
  }

  std::cout << "one heavy model (" << heavy_nl.num_gates()
            << " gates, saturating) + " << kLightModels
            << " light models (sparse RPCs), " << run_for.count()
            << " ms per mode, 2 workers on "
            << std::thread::hardware_concurrency() << " core(s)\n\n";

  const ModeResult fifo = run_mode(EngineOptions::Scheduling::kGlobalFifo,
                                   heavy_nl, light_nls, run_for);
  print_mode(EngineOptions::Scheduling::kGlobalFifo, fifo);
  const ModeResult fair = run_mode(EngineOptions::Scheduling::kWeightedFair,
                                   heavy_nl, light_nls, run_for);
  print_mode(EngineOptions::Scheduling::kWeightedFair, fair);

  const std::uint64_t fifo_p99 = worst_light_p99(fifo);
  const std::uint64_t fair_p99 = worst_light_p99(fair);
  std::cout << "worst light-model p99 under heavy saturation: "
            << fifo_p99 << " us (global-fifo) -> " << fair_p99
            << " us (weighted-fair)";
  if (fair_p99 > 0 && fifo_p99 >= fair_p99) {
    std::cout << ", " << std::fixed << std::setprecision(1)
              << static_cast<double>(fifo_p99) / static_cast<double>(fair_p99)
              << "x better";
  }
  std::cout << "\n";
  lbnn::bench::emit_bench_json("serve_fairness",
                               static_cast<double>(fair.report.p50_latency_us),
                               static_cast<double>(fair_p99),
                               fair.report.requests_per_sec, fair_p99 > 0);
  return 0;
}
