// Reproduces Table III: FPS comparison on the extreme-throughput models
// (NID, JSC-M, JSC-L) against LogicNets, Google+CERN (hls4ml), and the FINN
// MVU RTL implementation. LPV count = 16.
//
// Expected shape: the hard-wired implementations (LogicNets et al.) beat the
// programmable LPU by 1-4 orders of magnitude — the LPU's selling point is
// reprogrammability across models on the same fabric, not peak FPS here.

#include <iomanip>
#include <iostream>

#include "baselines/baseline_models.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::baselines;
  using bench::fps_str;

  const LpuConfig lpu = bench::paper_lpu();
  CompileOptions copts;
  copts.lpu = lpu;
  nn::SynthOptions synth = bench::tiny_synth();
  synth.max_neurons = 128;  // tiny models: synthesize (nearly) whole layers
  synth.max_inputs = 128;

  std::cout << "TABLE III: FPS comparison, high-throughput models (LPV count = 16)\n";
  std::cout << "baselines: modeled (published); LPU: measured on compiled "
               "schedules (published)\n\n";
  std::cout << std::left << std::setw(8) << "Model" << std::right
            << std::setw(22) << "LogicNets" << std::setw(22) << "Google+CERN"
            << std::setw(22) << "FINN-MVU" << std::setw(22) << "LPU\n";
  bench::print_rule(96);

  for (const auto& model : {nn::nid(), nn::jsc_m(), nn::jsc_l()}) {
    const auto ln = logicnets(model);
    const auto gc = hls4ml(model);
    const auto fm = finn_mvu(model);

    const auto layers = compile_model_layers(model, synth, copts, 7);
    const double lpu_fps = lpu_frames_per_second(layers, lpu);

    const auto cell = [&model](const BaselineEstimate& e) -> std::string {
      if (!e.fps_published) return "-";
      return bench::fps_str(e.fps_model) + " (" + bench::fps_str(*e.fps_published) + ")";
    };
    std::string lpu_cell = fps_str(lpu_fps);
    if (const auto pub = lpu_published(model.name)) {
      lpu_cell += " (" + fps_str(*pub) + ")";
    }
    std::cout << std::left << std::setw(8) << model.name << std::right
              << std::setw(22) << cell(ln) << std::setw(22) << cell(gc)
              << std::setw(22) << cell(fm) << std::setw(22) << lpu_cell << "\n";
  }
  bench::print_rule(96);
  std::cout << "shape check: hard-wired netlists (LogicNets/hls4ml/FINN) beat "
               "the programmable LPU, as in the paper; the LPU runs all of "
               "Table II on the same hardware, they cannot.\n";
  return 0;
}
