// Cascade serving vs big-model-only at equal deadline, ~2x the big model's
// sustainable load.
//
//   $ ./serve_cascade [ms_per_mode] [slo_us]
//
// Both modes drive the same open-loop arrival process over the same input
// pool and the same per-request deadline (now + SLO):
//
//   big-only   every request goes straight to the big model; admission sheds
//              what the queue cannot drain in time.
//   cascade    a tiny NullaNet-style synthesis of the SAME layer screens
//              every request first; the confidence predicate answers the
//              easy ~60% at stage 1 and forwards the rest to the big model
//              with the SAME absolute deadline (stage 2 admits on the
//              remaining budget only).
//
// The claim under test (PR 10 acceptance): cascade goodput >= 1.2x big-only
// goodput at equal deadline, with the tiny model answering at least half of
// the completed requests.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "netlist/simulate.hpp"
#include "nn/model_zoo.hpp"
#include "runtime/engine.hpp"
#include "serve/cascade.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;
using lbnn::serve::Cascade;
using lbnn::serve::CascadeOptions;
using lbnn::serve::CascadeReport;
using SteadyClock = std::chrono::steady_clock;

EngineOptions engine_options() {
  EngineOptions eopt;
  eopt.num_workers = 2;
  eopt.batch_timeout = std::chrono::microseconds(200);
  eopt.compile.lpu.m = 8;  // 16-lane words
  eopt.compile.lpu.n = 8;
  // Like serve_overload: this bench isolates a routing policy (cascade vs
  // direct), so pin the scalar executor — service time must come from the
  // models' gate counts, not from SIMD kernels racing the 1-core container's
  // scheduler timeslice.
  eopt.simd = false;
  return eopt;
}

/// Tiny and big are the SAME zoo layer at two synthesis fidelities: the
/// NullaNet-Tiny screen (fan-in-pruned LUT cones) and the exact
/// XNOR-popcount form (hundreds of gates per neuron). Identical inputs, so
/// one request feeds either stage unchanged.
struct Models {
  Netlist tiny;
  Netlist big;
};

Models make_models() {
  const nn::ModelDesc desc = nn::jsc_l();
  Rng rng(41);
  Models m;
  m.tiny = nn::synthesize_layer_ffcl(desc.layers[0], bench::tiny_synth(), rng).ffcl;
  nn::SynthOptions heavy;  // defaults: kPopcountExact, fan-in up to 24
  Rng rng2(41);
  m.big = nn::synthesize_layer_ffcl(desc.layers[0], heavy, rng2).ffcl;
  return m;
}

/// The confidence predicate reads one tiny-model output bit. Pick the bit
/// whose true-rate over a random sample is closest to the target easy share,
/// then assemble a pool with exactly that share so the workload split is a
/// bench parameter, not a netlist accident.
struct Workload {
  std::vector<std::vector<bool>> inputs;  ///< cycled by both modes
  std::size_t predicate_bit = 0;
  double easy_share = 0.0;
};

Workload make_workload(const Netlist& tiny, double target_easy) {
  Rng rng(17);
  constexpr std::size_t kSample = 2048;
  std::vector<std::vector<bool>> cand(kSample);
  std::vector<std::vector<bool>> outs(kSample);
  std::vector<std::size_t> ones(tiny.num_outputs(), 0);
  for (std::size_t i = 0; i < kSample; ++i) {
    cand[i].resize(tiny.num_inputs());
    for (std::size_t j = 0; j < cand[i].size(); ++j) cand[i][j] = rng.next_bool();
    outs[i] = simulate_scalar(tiny, cand[i]);
    for (std::size_t b = 0; b < outs[i].size(); ++b) ones[b] += outs[i][b];
  }
  Workload w;
  double best = 2.0;
  for (std::size_t b = 0; b < ones.size(); ++b) {
    const double rate = static_cast<double>(ones[b]) / kSample;
    if (std::abs(rate - target_easy) < best) {
      best = std::abs(rate - target_easy);
      w.predicate_bit = b;
    }
  }
  std::vector<std::vector<bool>> easy;
  std::vector<std::vector<bool>> hard;
  for (std::size_t i = 0; i < kSample; ++i) {
    (outs[i][w.predicate_bit] ? easy : hard).push_back(std::move(cand[i]));
  }
  // Interleave to the target share (pool of 256), cycling each class.
  constexpr std::size_t kPool = 256;
  std::size_t ei = 0;
  std::size_t hi = 0;
  std::size_t n_easy = 0;
  for (std::size_t i = 0; i < kPool; ++i) {
    const bool want_easy =
        !easy.empty() &&
        (hard.empty() ||
         static_cast<double>(n_easy) < target_easy * static_cast<double>(i + 1));
    if (want_easy) {
      w.inputs.push_back(easy[ei++ % easy.size()]);
      ++n_easy;
    } else {
      w.inputs.push_back(hard[hi++ % hard.size()]);
    }
  }
  w.easy_share = static_cast<double>(n_easy) / kPool;
  return w;
}

/// Closed-loop calibration of the BIG model's sustainable completion rate.
double measure_sustainable_rps(const Netlist& big, const Workload& w) {
  Engine engine(engine_options());
  ModelOptions mopt;
  mopt.queue_bound = 8 * 16;
  const ModelHandle h = engine.load("calib", big, mopt);
  constexpr int kRequests = 1024;
  const auto t0 = SteadyClock::now();
  std::vector<std::future<std::vector<bool>>> futs;
  futs.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futs.push_back(engine.submit(h, w.inputs[i % w.inputs.size()]));
  }
  engine.drain();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  for (auto& f : futs) f.get();
  return static_cast<double>(kRequests) / secs;
}

struct ModeResult {
  std::uint64_t offered = 0;
  std::uint64_t on_slo = 0;
  std::uint64_t late_or_dead = 0;
  double goodput_per_sec = 0.0;
  CascadeReport cascade;  ///< zeros in big-only mode
  ServeReport report;
};

ModeResult run_mode(bool cascaded, const Models& m, const Workload& w,
                    double offered_rps, std::chrono::milliseconds run_for,
                    std::chrono::microseconds slo) {
  Engine engine(engine_options());
  ModelOptions mopt;
  mopt.queue_bound = 16 * 16;
  const ModelHandle big = engine.load("big", m.big, mopt);
  ModelHandle tiny;
  std::unique_ptr<Cascade> cascade;
  if (cascaded) {
    tiny = engine.load("tiny", m.tiny, mopt);
    CascadeOptions copt;
    const std::size_t bit = w.predicate_bit;
    copt.confident = [bit](const std::vector<bool>& out) { return out[bit]; };
    cascade = std::make_unique<Cascade>(engine, tiny, big, copt);
  }

  struct InFlight {
    std::future<std::vector<bool>> future;
    SteadyClock::time_point submitted;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<InFlight> in_flight;
  bool generator_done = false;
  ModeResult r;

  std::thread joiner([&] {
    std::size_t idx = 0;
    for (;;) {
      InFlight* item = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return idx < in_flight.size() || generator_done; });
        if (idx >= in_flight.size()) break;
        item = &in_flight[idx++];
      }
      try {
        item->future.get();
        if (SteadyClock::now() - item->submitted <= slo) {
          ++r.on_slo;
        } else {
          ++r.late_or_dead;
        }
      } catch (const Error&) {
        ++r.late_or_dead;  // shed at either stage, or expired in queue
      }
    }
  });

  const auto interarrival =
      std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / offered_rps));
  const auto t_start = SteadyClock::now();
  const auto t_end = t_start + run_for;
  auto next_fire = t_start;
  std::size_t rr = 0;
  while (SteadyClock::now() < t_end) {
    if (SteadyClock::now() < next_fire) {
      std::this_thread::yield();
      continue;
    }
    next_fire += interarrival;
    const std::vector<bool>& bits = w.inputs[rr++ % w.inputs.size()];
    ++r.offered;
    const auto t0 = SteadyClock::now();
    if (cascaded) {
      InFlight item{cascade->submit(bits, t0 + slo), t0};
      {
        std::lock_guard<std::mutex> lk(mu);
        in_flight.push_back(std::move(item));
      }
      cv.notify_one();
    } else {
      std::future<std::vector<bool>> fut;
      if (engine.try_submit(big, bits, &fut, t0 + slo) ==
          SubmitStatus::kAccepted) {
        {
          std::lock_guard<std::mutex> lk(mu);
          in_flight.push_back({std::move(fut), t0});
        }
        cv.notify_one();
      } else {
        ++r.late_or_dead;  // refused at admission: learned "no" instantly
      }
    }
  }
  if (cascade) {
    cascade->drain();
  } else {
    engine.drain();
  }
  const double wall =
      std::chrono::duration<double>(SteadyClock::now() - t_start).count();
  {
    std::lock_guard<std::mutex> lk(mu);
    generator_done = true;
  }
  cv.notify_all();
  joiner.join();
  r.goodput_per_sec = static_cast<double>(r.on_slo) / wall;
  if (cascade) r.cascade = cascade->report();
  r.report = engine.report();
  cascade.reset();  // before the engine
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r,
                std::chrono::microseconds slo) {
  std::cout << name << ":\n  offered " << r.offered << ", on-SLO("
            << slo.count() << "us) " << r.on_slo << ", late/shed/dead "
            << r.late_or_dead << "\n  goodput " << std::fixed
            << std::setprecision(0) << r.goodput_per_sec << " req/s\n";
  if (r.cascade.submitted > 0) {
    std::cout << "  cascade: stage1 answered " << r.cascade.stage1_answered
              << ", forwarded " << r.cascade.forwarded << ", stage2 answered "
              << r.cascade.stage2_answered << ", stage2 shed "
              << r.cascade.stage2_shed << ", bypassed " << r.cascade.bypassed
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested_ms = argc > 1 ? std::atoll(argv[1]) : 400;
  const auto run_for =
      std::chrono::milliseconds(requested_ms > 0 ? requested_ms : 400);

  const Models m = make_models();
  const Workload w = make_workload(m.tiny, 0.6);
  std::cout << "tiny " << m.tiny.num_gates() << " gates, big "
            << m.big.num_gates() << " gates; predicate bit "
            << w.predicate_bit << ", easy share " << std::fixed
            << std::setprecision(2) << w.easy_share << "\n";

  const double sustainable = measure_sustainable_rps(m.big, w);
  const double offered = 2.0 * sustainable;
  const long long slo_arg = argc > 2 ? std::atoll(argv[2]) : 0;
  const auto slo = std::chrono::microseconds(
      slo_arg > 0 ? slo_arg
                  : static_cast<long long>(8.0 * 16.0 * 1e6 / sustainable));
  std::cout << "big-model sustainable ~" << std::setprecision(0) << sustainable
            << " req/s; offering 2x (" << offered << " req/s) for "
            << run_for.count() << " ms per mode, SLO " << slo.count()
            << " us\n\n";

  // Acceptance gate (PR 10): cascade goodput >= 1.2x big-only at the same
  // deadline, tiny answering >= half of completions. Best-of-two attempts,
  // as in the other serving benches: a single attempt can lose to preemption
  // on a loaded 1-core host; a real regression fails twice.
  bool ok = false;
  ModeResult cas;
  for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
    if (attempt > 0) {
      std::cout << "\ngate missed; retrying once (noisy host?)\n\n";
    }
    const ModeResult base = run_mode(false, m, w, offered, run_for, slo);
    print_mode("big-only", base, slo);
    cas = run_mode(true, m, w, offered, run_for, slo);
    print_mode("cascade (tiny screens, big finishes)", cas, slo);

    const double ratio = base.goodput_per_sec > 0.0
                             ? cas.goodput_per_sec / base.goodput_per_sec
                             : 0.0;
    const std::uint64_t answered =
        cas.cascade.stage1_answered + cas.cascade.stage2_answered;
    const double tiny_share =
        answered > 0 ? static_cast<double>(cas.cascade.stage1_answered) /
                           static_cast<double>(answered)
                     : 0.0;
    std::cout << "goodput: " << std::setprecision(0) << base.goodput_per_sec
              << " -> " << cas.goodput_per_sec << " req/s ("
              << std::setprecision(2) << ratio << "x); tiny answered "
              << std::setprecision(2) << 100.0 * tiny_share
              << "% of completions\n";
    ok = ratio >= 1.2 && tiny_share >= 0.5;
  }
  std::cout << (ok ? "PASS" : "FAIL")
            << ": cascade goodput >= 1.2x big-only at equal deadline, tiny "
               "answering >= half\n";
  lbnn::bench::emit_bench_json("serve_cascade",
                               static_cast<double>(cas.report.p50_latency_us),
                               static_cast<double>(cas.report.p99_latency_us),
                               cas.goodput_per_sec, ok);
  return ok ? 0 : 1;
}
