// Reproduces Fig. 7: per-layer effect of the MFG merging procedure on VGG16
// layers 2-13. (a) computation time (clock cycles of one steady-state pass)
// and (b) MFG count, with and without Algorithm 3. Expected shape: merging
// reduces both on every layer, and cycle count correlates strongly with MFG
// count (the paper's observation in Sec. VI.A).

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/compiler.hpp"

int main() {
  using namespace lbnn;

  const LpuConfig lpu = bench::paper_lpu();
  CompileOptions with;
  with.lpu = lpu;
  CompileOptions without = with;
  without.merge = false;
  const nn::SynthOptions synth = bench::tiny_synth();

  std::cout << "FIG 7: VGG16 layers 2-13, computation time and MFG count, "
               "with/without merging (LPV count = 16)\n\n";
  std::cout << std::left << std::setw(9) << "layer" << std::right
            << std::setw(14) << "cycles w/o" << std::setw(14) << "cycles w/"
            << std::setw(10) << "speedup" << std::setw(12) << "MFGs w/o"
            << std::setw(12) << "MFGs w/" << std::setw(12) << "reduction\n";
  bench::print_rule(83);

  const nn::ModelDesc vgg = nn::vgg16();
  Rng rng(99);
  double sum_speedup = 0;
  double sum_reduction = 0;
  // Correlation accumulator between cycles and MFG count across settings.
  std::vector<double> xs, ys;
  for (const auto& layer : vgg.layers) {
    // Model 1/8 of each layer's filters (min 8, max 64) so the per-layer
    // profile of Fig. 7 — wider layers cost more — survives the scaling.
    nn::SynthOptions layer_synth = synth;
    layer_synth.max_neurons =
        std::min<std::size_t>(64, std::max<std::size_t>(8, layer.out_neurons / 8));
    const nn::LayerWorkload wl = nn::synthesize_layer_ffcl(layer, layer_synth, rng);
    const CompileResult merged = compile(wl.ffcl, with);
    const CompileResult plain = compile(wl.ffcl, without);

    const double cyc_with = static_cast<double>(merged.program.steady_state_interval_cycles());
    const double cyc_without = static_cast<double>(plain.program.steady_state_interval_cycles());
    const double speedup = cyc_without / cyc_with;
    const double reduction = static_cast<double>(plain.report.mfgs_after_merge) /
                             static_cast<double>(merged.report.mfgs_after_merge);
    sum_speedup += speedup;
    sum_reduction += reduction;
    xs.push_back(static_cast<double>(merged.report.mfgs_after_merge));
    ys.push_back(cyc_with);
    xs.push_back(static_cast<double>(plain.report.mfgs_after_merge));
    ys.push_back(cyc_without);

    std::cout << std::left << std::setw(9) << layer.name << std::right
              << std::fixed << std::setprecision(0) << std::setw(14)
              << cyc_without << std::setw(14) << cyc_with << std::setw(9)
              << std::setprecision(2) << speedup << "x" << std::setw(12)
              << plain.report.mfgs_after_merge << std::setw(12)
              << merged.report.mfgs_after_merge << std::setw(11) << reduction
              << "x\n";
  }
  bench::print_rule(83);

  // Pearson correlation between MFG count and cycle count.
  const std::size_t n = xs.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  const double corr = sxy / std::sqrt(sxx * syy);
  std::cout << std::setprecision(2);
  std::cout << "mean speedup from merging: " << sum_speedup / 12.0 << "x; "
            << "mean MFG reduction: " << sum_reduction / 12.0 << "x\n";
  std::cout << "correlation(MFG count, cycles) = " << corr
            << " (paper: \"high correlation between computation time and the "
               "MFG count\")\n";
  return 0;
}
