// Serving scaling curve: aggregate samples/s of the batched multi-threaded
// engine as worker count grows, against the single-thread LpuSimulator::run
// baseline on the same program and the same lane-saturating workload.
//
//   $ ./serve_throughput [total_samples]
//
// The workload is a reconvergent grid compiled for the paper's LPU
// (m = 64 -> 128-lane datapath words), large enough that simulation work
// dominates request plumbing. Expect samples/s to grow monotonically with
// workers and to clear 2x the baseline at 4 workers on a machine with >= 4
// cores; on fewer cores the curve flattens at the core count.

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lbnn;
  using namespace lbnn::runtime;

  const long long requested = argc > 1 ? std::atoll(argv[1]) : 8192;
  // <= 0 covers both unparsable and negative arguments.
  const std::size_t total_samples =
      requested > 0 ? static_cast<std::size_t>(requested) : 8192;

  CompileOptions copt;
  copt.lpu = bench::paper_lpu(8);
  Rng gen(7);
  const Netlist nl = reconvergent_grid(96, 24, gen);
  const CompileResult compiled = compile(nl, copt);
  const std::size_t lanes = compiled.program.cfg.effective_word_width();
  const std::size_t batches = (total_samples + lanes - 1) / lanes;

  std::cout << "workload: " << nl.num_gates() << " gates, "
            << compiled.report.wavefronts << " wavefronts, " << lanes
            << "-lane words, " << total_samples << " samples ("
            << batches << " full batches)\n\n";

  // Baseline: one thread, one simulator, full-width packed batches — the
  // best a single-shot LpuSimulator::run loop can do (zero request plumbing).
  Rng rng(8);
  const auto inputs = random_inputs(nl, lanes, rng);
  LpuSimulator sim(compiled.program);
  const auto t0 = Clock::now();
  for (std::size_t b = 0; b < batches; ++b) sim.run(inputs);
  const double base_s = seconds_since(t0);
  const double base_rate = static_cast<double>(batches * lanes) / base_s;
  std::cout << "single-thread LpuSimulator::run baseline: "
            << bench::fps_str(base_rate) << " samples/s\n\n";

  // One request per sample, reused across engine configurations.
  std::vector<std::vector<bool>> requests;
  requests.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::vector<bool> bits(nl.num_inputs());
    for (std::size_t pi = 0; pi < bits.size(); ++pi) bits[pi] = inputs[pi].get(lane);
    requests.push_back(std::move(bits));
  }

  std::cout << std::left << std::setw(9) << "workers" << std::setw(14)
            << "samples/s" << std::setw(10) << "speedup" << std::setw(12)
            << "occupancy" << "p99 (us)\n";
  bench::print_rule(54);
  // The 4-worker row is the perf-trajectory anchor (bench/run_all.py): held
  // here across the loop, with its tracing-on twin measured after it.
  double anchor_rate = 0.0;
  std::uint64_t anchor_p50 = 0, anchor_p99 = 0;
  const auto run_config = [&](std::uint32_t workers, bool tracing,
                              std::uint64_t* p50, std::uint64_t* p99,
                              double* occupancy = nullptr) {
    EngineOptions eopt;
    eopt.num_workers = workers;
    eopt.batch_timeout = std::chrono::milliseconds(5);
    eopt.compile = copt;
    eopt.tracing = tracing;
    Engine engine(eopt);
    // Default queue bound (4 batches deep): the blocking submit() paces the
    // producer, so the measured rate is steady-state worker throughput, not
    // a race to enqueue an unbounded backlog.
    const ModelHandle grid = engine.load("grid", nl);

    std::vector<std::future<std::vector<bool>>> futs;
    futs.reserve(batches * lanes);
    const auto start = Clock::now();
    for (std::size_t b = 0; b < batches; ++b) {
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        futs.push_back(engine.submit(grid, requests[lane]));
      }
    }
    engine.drain();
    const double elapsed = seconds_since(start);
    for (auto& f : futs) f.get();  // surface any batch failure

    const ServeReport rep = engine.report();
    const double rate = static_cast<double>(rep.samples) / elapsed;
    if (p50 != nullptr) *p50 = rep.p50_latency_us;
    if (p99 != nullptr) *p99 = rep.p99_latency_us;
    if (occupancy != nullptr) *occupancy = rep.lane_occupancy;
    return rate;
  };
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    std::uint64_t p50 = 0, p99 = 0;
    double occupancy = 0.0;
    const double rate =
        run_config(workers, /*tracing=*/false, &p50, &p99, &occupancy);
    if (workers == 4) {
      anchor_rate = rate;
      anchor_p50 = p50;
      anchor_p99 = p99;
    }
    std::ostringstream speedup;
    speedup << std::fixed << std::setprecision(2) << rate / base_rate << "x";
    std::cout << std::left << std::setw(9) << workers << std::setw(14)
              << bench::fps_str(rate) << std::setw(10) << speedup.str()
              << std::setw(12)
              << (std::to_string(static_cast<int>(occupancy * 100)) + "%")
              << p99 << "\n";
  }
  std::cout << "\n(speedup saturates at min(workers, cores); this host has "
            << std::thread::hardware_concurrency() << " core(s))\n";

  // Tracing overhead at the anchor config: the acceptance bar for the
  // always-compiled trace layer is < 5% p99 degradation when ON.
  std::uint64_t traced_p99 = 0;
  const double traced_rate =
      run_config(4, /*tracing=*/true, nullptr, &traced_p99);
  const double p99_delta =
      anchor_p99 > 0 ? 100.0 *
                           (static_cast<double>(traced_p99) -
                            static_cast<double>(anchor_p99)) /
                           static_cast<double>(anchor_p99)
                     : 0.0;
  std::cout << "tracing on (4 workers): " << bench::fps_str(traced_rate)
            << " samples/s, p99 " << anchor_p99 << " -> " << traced_p99
            << " us (" << std::showpos << std::fixed << std::setprecision(1)
            << p99_delta << "%" << std::noshowpos << ")\n";

  bench::emit_bench_json("serve_throughput", static_cast<double>(anchor_p50),
                         static_cast<double>(anchor_p99), anchor_rate,
                         /*pass=*/anchor_rate > 0.0);
  return 0;
}
