// google-benchmark micro-benchmarks of the LPU cycle simulator and the
// reference netlist simulator (simulation throughput in lanes x gates / s).

#include <benchmark/benchmark.h>

#include "core/compiler.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"

namespace {

using namespace lbnn;

void BM_ReferenceSimulator(benchmark::State& state) {
  Rng gen(3);
  const Netlist nl = reconvergent_grid(static_cast<std::size_t>(state.range(0)), 12, gen);
  Rng rng(7);
  const auto inputs = random_inputs(nl, 128, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(nl, inputs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nl.num_gates()) * 128);
}
BENCHMARK(BM_ReferenceSimulator)->Arg(64)->Arg(256);

void BM_LpuSimulator(benchmark::State& state) {
  Rng gen(3);
  const Netlist nl = reconvergent_grid(static_cast<std::size_t>(state.range(0)), 12, gen);
  CompileOptions opt;
  opt.lpu.m = 32;
  opt.lpu.n = 16;
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  Rng rng(9);
  const auto inputs = random_inputs(nl, res.program.cfg.effective_word_width(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(inputs));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(res.program.clock_cycles()));
  state.counters["wavefronts"] =
      static_cast<double>(res.program.num_wavefronts);
  state.counters["lpe_util"] = sim.counters().lpe_utilization;
}
BENCHMARK(BM_LpuSimulator)->Arg(32)->Arg(64)->Arg(128);

void BM_LpuWordWidthScaling(benchmark::State& state) {
  Rng gen(5);
  const Netlist nl = reconvergent_grid(48, 10, gen);
  CompileOptions opt;
  opt.lpu.m = 32;
  opt.lpu.n = 12;
  opt.lpu.word_width = static_cast<std::uint32_t>(state.range(0));
  const CompileResult res = compile(nl, opt);
  LpuSimulator sim(res.program);
  Rng rng(11);
  const auto inputs = random_inputs(nl, opt.lpu.effective_word_width(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(inputs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LpuWordWidthScaling)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
