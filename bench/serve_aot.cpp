// AOT-compiled native member execution vs the bit-sliced interpreter.
//
//   $ ./serve_aot [rounds] [gates] [word_width]
//
// Same anchor as serve_simd: a 4-worker engine, one single-member model from
// a ~400-gate random DAG, 2048-lane batches, one batch in flight during
// measurement, every lane of every output checked against the netlist
// reference. Three gates, mirrored by CI:
//
//   (a) steady-state: AOT member p99 >= 1.0x the bit-sliced interpreter's
//       (the artifact replays the identical sliced stream as straight-line
//       code — it must never LOSE to the interpreter; the win margin is
//       printed, not gated, because it is host-dependent). Both modes run
//       twice per attempt, interleaved, gating on each mode's min p99;
//       best-of-two attempts.
//   (b) promotion under live traffic: codegen is held back (program-cache
//       native hook) while real batches run on the interpreter, released
//       mid-workload, and the run continues across the promotion instant.
//       Every submitted future must resolve bit-exact, the engine's books
//       must balance (completed == submitted, zero shed/expired), and both
//       backends must appear in the member-run mix — zero dropped, zero
//       double-executed requests across the flip.
//   (c) warm restart: a second engine pointed at the same artifact_dir must
//       reach AOT-ready >= 10x faster than the cold engine that compiled the
//       artifact, with ZERO native recompiles (cache counters). Skipped
//       (not failed) when no native compiler is reachable — the threaded
//       fallback has no disk artifact to warm-load.
//
// The JSONL line reports the AOT mode's member p50 and requests/s; p99 is
// structurally unmeasured (null) — the p99 property is gated as the ratio
// in (a), robust to shared-runner noise that hits both modes equally.

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "aot/artifact.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "lpu/simulator.hpp"
#include "netlist/random_circuits.hpp"
#include "netlist/simulate.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace lbnn;
using namespace lbnn::runtime;

constexpr std::size_t kBatchesInFlight = 1;  // see serve_simd's rationale
constexpr std::size_t kWarmupInFlight = 4;

struct ModeResult {
  ServeReport report;
  std::uint64_t mismatches = 0;
  double wall_s = 0.0;
};

EngineOptions anchor_options(std::uint32_t word_width, bool aot,
                             const std::string& artifact_dir) {
  EngineOptions eopt;
  eopt.num_workers = 4;
  eopt.batch_timeout = std::chrono::hours(1);  // seal on full lanes only
  eopt.compile.lpu.m = 8;
  eopt.compile.lpu.n = 8;
  eopt.compile.lpu.word_width = word_width;
  eopt.simd = true;
  eopt.aot = aot;
  eopt.artifact_dir = artifact_dir;
  eopt.hedging = false;  // keep the service-time percentiles pure
  return eopt;
}

ModeResult run_mode(bool aot, const std::string& artifact_dir,
                    const Netlist& nl, int rounds, std::uint32_t word_width,
                    const std::vector<std::vector<bool>>& lane_inputs,
                    const std::vector<std::vector<bool>>& expected) {
  Engine engine(anchor_options(word_width, aot, artifact_dir));
  const ModelHandle h = engine.load(aot ? "aot" : "sliced", nl);
  if (aot) engine.wait_aot_ready();  // measure promoted steady state only

  const std::size_t lanes = lane_inputs.size();
  constexpr int kWarmup = 6;
  ModeResult r;
  const auto one_round = [&](std::size_t in_flight) {
    std::vector<std::future<std::vector<bool>>> futs;
    futs.reserve(in_flight * lanes);
    for (std::size_t b = 0; b < in_flight; ++b) {
      for (std::size_t i = 0; i < lanes; ++i) {
        futs.push_back(engine.submit(h, lane_inputs[i]));
      }
    }
    for (std::size_t f = 0; f < futs.size(); ++f) {
      if (futs[f].get() != expected[f % lanes]) ++r.mismatches;
    }
  };
  for (int round = 0; round < kWarmup; ++round) one_round(kWarmupInFlight);
  engine.reset_stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) one_round(kBatchesInFlight);
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.report = engine.report();
  engine.shutdown();
  return r;
}

void print_mode(const char* name, const ModeResult& r) {
  const auto& by = r.report.member_runs_by_backend;
  std::cout << name << ":\n"
            << "  member service p50 " << r.report.member_p50_exact_us
            << " us, p99 " << r.report.member_p99_exact_us << " us ("
            << r.report.member_runs << " runs: "
            << by[0] << " scalar / " << by[1] << " sliced / " << by[2]
            << " aot / " << by[3] << " aot-threaded)\n"
            << "  requests/s " << std::fixed << std::setprecision(0)
            << r.report.requests_per_sec << ", mismatches " << r.mismatches
            << ", wall " << std::setprecision(2) << r.wall_s << " s\n\n";
}

/// Gate (b): serve real traffic on the interpreter while codegen is parked
/// on the native hook, release it mid-workload, keep serving across the
/// promotion instant. Returns true when the books balance bit-exactly.
bool promotion_gate(const Netlist& nl, std::uint32_t word_width,
                    const std::string& artifact_dir,
                    const std::vector<std::vector<bool>>& lane_inputs,
                    const std::vector<std::vector<bool>>& expected) {
  Engine engine(anchor_options(word_width, /*aot=*/true, artifact_dir));
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  engine.program_cache().set_native_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });
  const ModelHandle h = engine.load("promote", nl);

  const std::size_t lanes = lane_inputs.size();
  std::uint64_t submitted = 0, mismatches = 0;
  const auto serve_rounds = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::future<std::vector<bool>>> futs;
      futs.reserve(lanes);
      for (std::size_t i = 0; i < lanes; ++i) {
        futs.push_back(engine.submit(h, lane_inputs[i]));
        ++submitted;
      }
      for (std::size_t f = 0; f < futs.size(); ++f) {
        if (futs[f].get() != expected[f % lanes]) ++mismatches;
      }
    }
  };

  serve_rounds(4);  // interpreter era: codegen is parked on the hook
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  serve_rounds(2);  // promotion lands somewhere in here
  engine.wait_aot_ready();
  serve_rounds(4);  // AOT era
  engine.drain();

  const ServeReport r = engine.report();
  const auto& by = r.member_runs_by_backend;
  const std::uint64_t by_sum = by[0] + by[1] + by[2] + by[3];
  const bool balanced = r.requests == submitted && r.shed == 0 &&
                        r.expired == 0 && mismatches == 0 &&
                        by_sum == r.member_runs;
  const bool flipped = by[1] > 0 && (by[2] + by[3]) > 0;
  std::cout << "promotion under live traffic: " << submitted
            << " submitted, " << r.requests << " completed, " << r.shed
            << " shed, " << r.expired << " expired, " << mismatches
            << " mismatches; member runs " << by[1] << " sliced -> "
            << by[2] + by[3] << " aot\n";
  if (!flipped) {
    std::cout << "  (note: one era missing from the member-run mix)\n";
  }
  engine.shutdown();
  return balanced && flipped;
}

/// Gate (c): time-to-AOT-ready, cold (compiles the artifact) vs warm (a new
/// engine on the same directory reloads it). Returns {cold_s, warm_s,
/// recompiles_on_warm}.
struct RestartResult {
  double cold_s = 0.0;
  double warm_s = 0.0;
  std::uint64_t warm_compiles = 0;
  std::uint64_t warm_disk_hits = 0;
};

RestartResult restart_gate(const Netlist& nl, std::uint32_t word_width,
                           const std::string& artifact_dir) {
  RestartResult r;
  const auto timed_ready = [&](const char* name, std::uint64_t* compiles,
                               std::uint64_t* disk_hits) {
    const auto t0 = std::chrono::steady_clock::now();
    Engine engine(anchor_options(word_width, /*aot=*/true, artifact_dir));
    const ModelHandle h = engine.load(name, nl);
    engine.wait_aot_ready();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const CacheStats cs = engine.cache_stats();
    if (compiles != nullptr) *compiles = cs.native_compiles;
    if (disk_hits != nullptr) *disk_hits = cs.native_disk_hits;
    (void)h;
    engine.shutdown();
    return s;
  };
  r.cold_s = timed_ready("cold", nullptr, nullptr);
  r.warm_s = timed_ready("warm", &r.warm_compiles, &r.warm_disk_hits);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const long long rounds_arg = argc > 1 ? std::atoll(argv[1]) : 120;
  const int rounds = rounds_arg > 0 ? static_cast<int>(rounds_arg) : 120;
  const long long gates_arg = argc > 2 ? std::atoll(argv[2]) : 400;
  const long long ww_arg = argc > 3 ? std::atoll(argv[3]) : 2048;
  const std::uint32_t word_width =
      ww_arg > 0 ? static_cast<std::uint32_t>(ww_arg) : 2048;

  Rng gen(13);
  RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_gates = gates_arg > 0 ? static_cast<std::size_t>(gates_arg) : 400;
  spec.num_outputs = 8;
  const Netlist nl = random_dag(spec, gen);

  Rng lane_rng(29);
  std::vector<std::vector<bool>> lane_inputs(word_width);
  std::vector<std::vector<bool>> expected(word_width);
  for (std::size_t i = 0; i < word_width; ++i) {
    lane_inputs[i].resize(nl.num_inputs());
    for (std::size_t pi = 0; pi < lane_inputs[i].size(); ++pi) {
      lane_inputs[i][pi] = lane_rng.next_bool();
    }
    expected[i] = simulate_scalar(nl, lane_inputs[i]);
  }

  // One shared artifact directory for the whole bench, removed at exit: the
  // steady-state attempts warm-start from the first compile, and the restart
  // gate measures against it explicitly.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("lbnn-serve-aot-" + std::to_string(static_cast<long long>(
                                std::chrono::steady_clock::now()
                                    .time_since_epoch()
                                    .count()))))
          .string();
  std::filesystem::create_directories(dir);
  struct DirCleanup {
    const std::string& d;
    ~DirCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(d, ec);
    }
  } cleanup{dir};

  {
    // AOT must actually be on in this environment (LBNN_NO_AOT /
    // LBNN_FORCE_SCALAR pin it off); a gated bench against a backend that
    // cannot engage would "pass" vacuously.
    Engine probe(anchor_options(word_width, /*aot=*/true, dir));
    if (!probe.aot_enabled()) {
      std::cout << "serve_aot: AOT pinned off in this environment; nothing "
                   "to gate\n";
      lbnn::bench::emit_bench_json("serve_aot", 0.0,
                                   lbnn::bench::unmeasured(), 0.0, true);
      return 0;
    }
    probe.shutdown();
  }
  const bool native = !aot::aot_compiler().empty() &&
                      std::getenv("LBNN_AOT_THREADED") == nullptr;

  std::cout << "4-worker engine, " << spec.num_gates << "-gate DAG, "
            << word_width << "-lane batches, " << rounds
            << " rounds per mode, native leg "
            << (native ? "available" : "UNAVAILABLE (threaded fallback)")
            << ", " << std::thread::hardware_concurrency() << " core(s)\n\n";

  // Gate (a): steady-state member p99, AOT vs the bit-sliced interpreter.
  // Each attempt runs both modes TWICE, interleaved (S A S A), and gates on
  // each mode's minimum p99: over `rounds` samples the p99 is the worst few
  // member runs, and on a shared 1-core host a single preemption landing in
  // one mode's tail reads as a 2x swing. The min-of-two tail estimate
  // discards that one-off for both modes equally; a real regression survives
  // both runs of both attempts.
  bool gate_a = false;
  double aot_p50 = 0.0, aot_rps = 0.0;
  for (int attempt = 0; attempt < 2 && !gate_a; ++attempt) {
    if (attempt > 0) {
      std::cout << "gate (a) missed; retrying once (noisy host?)\n\n";
    }
    std::uint64_t sliced_p99 = 0, aot_p99 = 0, mismatches = 0;
    bool all_aot = true;
    for (int rep = 0; rep < 2; ++rep) {
      const ModeResult sliced =
          run_mode(false, "", nl, rounds, word_width, lane_inputs, expected);
      if (rep == 0) print_mode("bit-sliced interpreter (aot = false)", sliced);
      const ModeResult aot =
          run_mode(true, dir, nl, rounds, word_width, lane_inputs, expected);
      if (rep == 0) print_mode("aot (promoted steady state)", aot);
      const auto& by = aot.report.member_runs_by_backend;
      all_aot = all_aot && by[1] == 0 && (by[2] + by[3]) > 0;
      mismatches += sliced.mismatches + aot.mismatches;
      const auto min_in = [](std::uint64_t acc, std::uint64_t v) {
        return acc == 0 || (v > 0 && v < acc) ? v : acc;
      };
      sliced_p99 = min_in(sliced_p99, sliced.report.member_p99_exact_us);
      aot_p99 = min_in(aot_p99, aot.report.member_p99_exact_us);
      aot_p50 = static_cast<double>(aot.report.member_p50_exact_us);
      aot_rps = aot.report.requests_per_sec;
    }
    const double ratio = aot_p99 > 0 ? static_cast<double>(sliced_p99) /
                                           static_cast<double>(aot_p99)
                                     : 0.0;
    std::cout << "member p99 (min of 2 runs/mode): " << sliced_p99 << " -> "
              << aot_p99 << " us (" << std::fixed << std::setprecision(2)
              << ratio << "x, gate >= 1.0x)\n\n";
    gate_a = ratio >= 1.0 && mismatches == 0 && all_aot;
  }

  // Gate (b): zero dropped / double-executed across a mid-traffic promotion.
  const bool gate_b =
      promotion_gate(nl, word_width, dir, lane_inputs, expected);

  // Gate (c): warm restart >= 10x faster to AOT-ready, zero recompiles.
  // Measured in a FRESH directory — the steady-state attempts above already
  // populated `dir`, so a cold leg there would warm-load and gate nothing.
  bool gate_c = true;
  if (native) {
    const std::string cold_dir = dir + "-cold";
    std::filesystem::create_directories(cold_dir);
    const RestartResult rr = restart_gate(nl, word_width, cold_dir);
    std::error_code ec;
    std::filesystem::remove_all(cold_dir, ec);
    const double speedup = rr.warm_s > 0 ? rr.cold_s / rr.warm_s : 0.0;
    gate_c = speedup >= 10.0 && rr.warm_compiles == 0 && rr.warm_disk_hits > 0;
    std::cout << "warm restart: cold " << std::setprecision(3) << rr.cold_s
              << " s -> warm " << rr.warm_s << " s (" << std::setprecision(1)
              << speedup << "x, gate >= 10x; " << rr.warm_compiles
              << " recompiles, " << rr.warm_disk_hits << " disk hits)\n";
  } else {
    std::cout << "warm restart: skipped (no native compiler; the threaded "
                 "leg has no disk artifact)\n";
  }

  const bool ok = gate_a && gate_b && gate_c;
  std::cout << "\n" << (ok ? "PASS" : "FAIL") << ": (a) aot p99 >= 1.0x "
            << (gate_a ? "ok" : "MISS") << ", (b) promotion lossless "
            << (gate_b ? "ok" : "MISS") << ", (c) warm restart "
            << (native ? (gate_c ? "ok" : "MISS") : "skipped") << "\n";
  // p99 structurally unmeasured: gated as the ratio in (a), see header.
  lbnn::bench::emit_bench_json("serve_aot", aot_p50,
                               lbnn::bench::unmeasured(), aot_rps, ok);
  return ok ? 0 : 1;
}
