#!/usr/bin/env python3
"""Perf-trajectory harness: run the serving benches, collect their
machine-readable results, and compare against a checked-in baseline.

Each serve_* bench appends one JSONL line ({bench, p50_us, p99_us,
goodput_per_sec, pass}) to the file named by LBNN_BENCH_JSON (see
bench/bench_common.hpp). This script runs them all, folds the lines into one
document stamped with the git SHA, and — with --compare — fails when a
metric regressed past the tolerance against the last checked-in file:

    p99 regressed      : new > old * (1 + tolerance)
    goodput regressed  : new < old * (1 - tolerance)

A metric a bench does not own is structurally unmeasured: the JSONL line
carries "p99_us": null with "p99_measured": false, and the comparer skips it
by shape. (Metrics reported as 0 in pre-PR9 baselines are treated the same
way for back-compat — 0 meant "not measured", never "infinitely fast".) A
bench whose own PASS gate failed is reported but does not abort the sweep
(--strict makes it fatal).

    $ python3 bench/run_all.py --build-dir build --out BENCH_PR6.json
    $ python3 bench/run_all.py --build-dir build --compare BENCH_PR6.json \
          --tolerance 0.10

CI runs the second form against the checked-in BENCH_PR6.json with a generous
tolerance (shared runners are noisy); regenerate the baseline with the first
form when a PR intentionally moves performance.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Bench binaries and the (small) arguments that keep a full sweep under a
# couple of minutes on a laptop-class machine.
BENCHES = [
    ("serve_throughput", ["4096"]),
    ("serve_fairness", ["200"]),
    ("serve_overload", ["200"]),
    ("serve_stealing", ["30"]),
    ("serve_hedging", ["30"]),
    ("serve_sharding", ["200"]),
    ("serve_simd", ["200"]),
    ("serve_aot", ["120"]),
    ("serve_cascade", ["200"]),
    ("serve_canary", ["2000"]),
]


def git_sha():
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "--short", "HEAD"],
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except (subprocess.CalledProcessError, OSError):
        return "unknown"


def run_benches(build_dir):
    results = {}
    with tempfile.NamedTemporaryFile(mode="r", suffix=".jsonl") as sink:
        env = dict(os.environ, LBNN_BENCH_JSON=sink.name)
        for name, args in BENCHES:
            binary = os.path.join(build_dir, name)
            if not os.path.exists(binary):
                print(f"[run_all] SKIP {name}: {binary} not built")
                continue
            print(f"[run_all] running {name} {' '.join(args)} ...", flush=True)
            proc = subprocess.run([binary] + args, env=env,
                                  stdout=subprocess.PIPE,
                                  stderr=subprocess.STDOUT)
            tail = proc.stdout.decode(errors="replace").strip().splitlines()
            print("    " + (tail[-1] if tail else "(no output)"))
            # Gated benches exit nonzero on a missed PASS line; the JSON line
            # still lands and carries pass=false, so record and continue.
            if proc.returncode != 0:
                print(f"    (exit {proc.returncode})")
        sink.seek(0)
        for line in sink:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            results[row["bench"]] = {
                "p50_us": row["p50_us"],
                # null (with p99_measured false) when the bench does not own
                # an absolute p99; preserved as-is so the written baseline
                # keeps the structural shape.
                "p99_us": row["p99_us"],
                "p99_measured": row.get("p99_measured", row["p99_us"] != 0),
                "goodput_per_sec": row["goodput_per_sec"],
                "pass": row["pass"],
            }
    return results


def measured_p99(entry):
    """The entry's p99 if it was actually measured, else None.

    Structurally unmeasured (null + p99_measured false) and the pre-PR9 0.0
    sentinel both read as None.
    """
    v = entry.get("p99_us")
    if v is None or not entry.get("p99_measured", True) or v == 0:
        return None
    return v


def compare(old_doc, new_doc, tolerance):
    """Return a list of human-readable regression strings (empty == clean)."""
    regressions = []
    # A bench added since the baseline was cut has nothing to regress
    # against: new-bench = not-measured, warn and move on (the next baseline
    # regeneration picks it up). Only a bench that VANISHED from the run is a
    # regression, handled below.
    for bench in new_doc["benches"]:
        if bench not in old_doc.get("benches", {}):
            print(f"[run_all] NEW {bench}: not in baseline, skipping compare")
    for bench, old in old_doc.get("benches", {}).items():
        new = new_doc["benches"].get(bench)
        if new is None:
            regressions.append(f"{bench}: present in baseline but not re-run")
            continue
        o_p99, n_p99 = measured_p99(old), measured_p99(new)
        # Engine p99s come from octave-bucketed histograms (1023, 2047,
        # 4095, ... us), so a single bucket of run-to-run jitter reads as
        # +100% — more than any sane tolerance. Only flag a p99 that is
        # both past the tolerance AND more than one bucket above baseline
        # (n > 2*o + 1); sample-exact p99s (steal/hedge) are still caught
        # once they double, and the goodput check below stays at the plain
        # tolerance either way. A structurally unmeasured p99 on either
        # side (serve_simd, serve_aot) is skipped entirely.
        if (o_p99 is not None and n_p99 is not None
                and n_p99 > o_p99 * (1 + tolerance)
                and n_p99 > 2 * o_p99 + 1):
            regressions.append(
                f"{bench}: p99 {o_p99:.0f} -> {n_p99:.0f} us "
                f"(+{100 * (n_p99 / o_p99 - 1):.1f}% > {100 * tolerance:.0f}% "
                f"and > one octave bucket)"
            )
        o_gp = old.get("goodput_per_sec", 0)
        n_gp = new.get("goodput_per_sec", 0)
        if o_gp > 0 and n_gp > 0 and n_gp < o_gp * (1 - tolerance):
            regressions.append(
                f"{bench}: goodput {o_gp:.0f} -> {n_gp:.0f}/s "
                f"(-{100 * (1 - n_gp / o_gp):.1f}% > {100 * tolerance:.0f}%)"
            )
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="directory holding the bench binaries")
    ap.add_argument("--out", default=None,
                    help="write the aggregated results document here")
    ap.add_argument("--compare", default=None,
                    help="baseline JSON to diff against (CI regression gate)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10)")
    ap.add_argument("--strict", action="store_true",
                    help="fail when any bench's own PASS gate failed")
    args = ap.parse_args()

    benches = run_benches(args.build_dir)
    if not benches:
        print("[run_all] no bench results collected", file=sys.stderr)
        return 1
    doc = {"git_sha": git_sha(), "tolerance": args.tolerance,
           "benches": benches}

    print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"[run_all] wrote {args.out}")

    failed = [b for b, r in benches.items() if not r["pass"]]
    if failed:
        print(f"[run_all] bench PASS gate failed: {', '.join(sorted(failed))}")
        if args.strict:
            return 1

    if args.compare:
        with open(args.compare) as f:
            baseline = json.load(f)
        regressions = compare(baseline, doc, args.tolerance)
        if regressions:
            print(f"[run_all] REGRESSION vs {args.compare} "
                  f"(sha {baseline.get('git_sha', '?')}):")
            for r in regressions:
                print(f"    {r}")
            return 1
        print(f"[run_all] no regressions vs {args.compare} "
              f"(sha {baseline.get('git_sha', '?')}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
