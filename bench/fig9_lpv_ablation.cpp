// Reproduces Fig. 9: inference time of VGG16 and LENET5 as a function of the
// LPV count, plus the "effective LPV threshold" against NullaDSP (the
// minimum LPV count at which the LPU matches NullaDSP's throughput; the
// paper finds >= 2 LPVs suffice for VGG16). Expected shape: inference time
// falls with LPV count and saturates.

#include <iomanip>
#include <iostream>

#include "baselines/baseline_models.hpp"
#include "baselines/lpu_throughput.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::baselines;

  const nn::SynthOptions synth = bench::tiny_synth();
  const std::vector<std::uint32_t> lpv_counts{2, 4, 8, 16, 24, 32, 48, 64};

  std::cout << "FIG 9: inference time vs LPV count (ms per frame)\n\n";
  std::cout << std::left << std::setw(8) << "LPVs";
  for (const char* name : {"VGG16", "LENET5"}) {
    std::cout << std::right << std::setw(16) << name;
  }
  std::cout << "\n";
  bench::print_rule(40);

  const std::vector<nn::ModelDesc> models = {nn::vgg16(), nn::lenet5()};
  std::vector<std::vector<double>> frame_ms(models.size());
  for (const std::uint32_t n : lpv_counts) {
    std::cout << std::left << std::setw(8) << n;
    for (std::size_t mi = 0; mi < models.size(); ++mi) {
      const LpuConfig lpu = bench::paper_lpu(n);
      CompileOptions copts;
      copts.lpu = lpu;
      const auto layers = compile_model_layers(models[mi], synth, copts, 5);
      const double cycles = lpu_cycles_per_frame(layers, lpu);
      const double ms = cycles / (lpu.clock_mhz * 1e3);
      frame_ms[mi].push_back(ms);
      std::cout << std::right << std::fixed << std::setprecision(4)
                << std::setw(14) << ms * 1e3 << "us";
    }
    std::cout << "\n";
  }
  bench::print_rule(40);

  // Monotone-ish decrease and saturation summary.
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    const double first = frame_ms[mi].front();
    const double last = frame_ms[mi].back();
    const double at16 = frame_ms[mi][3];
    std::cout << models[mi].name << ": 2->64 LPVs speeds up "
              << std::setprecision(2) << first / last
              << "x; beyond 16 LPVs only " << at16 / last
              << "x remains (saturation)\n";
  }

  // Effective LPV threshold vs NullaDSP (published FPS).
  std::cout << "\nEffective LPV threshold vs NullaDSP:\n";
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    const auto dsp = nulla_dsp(models[mi]);
    if (!dsp.fps_published) continue;
    const double target_ms = 1e3 / *dsp.fps_published;
    std::uint32_t threshold = 0;
    for (std::size_t k = 0; k < lpv_counts.size(); ++k) {
      if (frame_ms[mi][k] <= target_ms) {
        threshold = lpv_counts[k];
        break;
      }
    }
    std::cout << "  " << models[mi].name << ": NullaDSP = "
              << bench::fps_str(*dsp.fps_published) << " FPS; LPU matches it "
              << "from " << threshold << " LPVs (paper: >= 2 LPVs for VGG16)\n";
  }
  return 0;
}
