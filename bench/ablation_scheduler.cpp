// Ablation of the scheduler design choices DESIGN.md §2.2 calls out:
//   * SharingMode: shared snapshots vs per-consumer recomputation (kTree)
//   * MFG merging on/off (also covered per-model by fig7/fig8)
//   * effective partition width (the "width headroom" ladder)
// Reported per workload family: wavefronts (initiation interval), scheduled
// instances (compute cost), and whether shared mode fit the snapshot lanes.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/mfg.hpp"
#include "core/schedule.hpp"
#include "netlist/random_circuits.hpp"
#include "opt/passes.hpp"
#include "opt/path_balance.hpp"
#include "opt/tech_map.hpp"

namespace {

using namespace lbnn;

Netlist prepared(Netlist nl, Level pad_to) {
  nl = optimize(nl);
  nl = tech_map(nl, CellLibrary::lut4_full());
  nl = eliminate_dead(nl);
  return balance_paths(nl, pad_to);
}

struct Row {
  std::string name;
  Netlist netlist;
};

}  // namespace

int main() {
  LpuConfig cfg;
  cfg.m = 16;
  cfg.n = 8;

  Rng gen(1);
  std::vector<Row> rows;
  rows.push_back({"tree64", prepared(random_tree(64, gen), 7)});
  rows.push_back({"grid16x6", prepared(reconvergent_grid(16, 6, gen), 7)});
  {
    RandomCircuitSpec spec;
    spec.num_inputs = 16;
    spec.num_gates = 500;
    spec.num_outputs = 8;
    rows.push_back({"dag500", prepared(random_dag(spec, gen), 15)});
  }

  std::cout << "SCHEDULER ABLATION (m=" << cfg.m << ", n=" << cfg.n << ")\n\n";
  std::cout << std::left << std::setw(10) << "circuit" << std::setw(8) << "merge"
            << std::right << std::setw(12) << "shared W" << std::setw(12)
            << "shared inst" << std::setw(12) << "tree W" << std::setw(12)
            << "tree inst" << std::setw(10) << "dup\n";
  lbnn::bench::print_rule(76);

  for (const auto& row : rows) {
    for (const bool merge : {false, true}) {
      PartitionOptions popt;
      popt.m = cfg.m;
      popt.band = cfg.n;
      MfgForest forest = partition(row.netlist, popt);
      if (merge) merge_mfgs(forest, popt.m);

      std::string shared_w = "lanes!";
      std::string shared_i = "-";
      try {
        const Schedule s = build_schedule(forest, cfg, SharingMode::kShared);
        shared_w = std::to_string(s.stats.wavefronts);
        shared_i = std::to_string(s.stats.instances);
      } catch (const CompileError&) {
        // shared snapshots exceeded the m lanes; the ladder falls to kTree
      }
      const Schedule t = build_schedule(forest, cfg, SharingMode::kTree);

      std::cout << std::left << std::setw(10) << row.name << std::setw(8)
                << (merge ? "on" : "off") << std::right << std::setw(12)
                << shared_w << std::setw(12) << shared_i << std::setw(12)
                << t.stats.wavefronts << std::setw(12) << t.stats.instances
                << std::setw(10) << t.stats.duplicates << "\n";
    }
  }
  lbnn::bench::print_rule(76);

  // Width-headroom ladder: effective m after compile() across tight configs.
  std::cout << "\nwidth-headroom ladder (compile() attempt outcomes):\n";
  for (const std::uint32_t m : {4u, 8u, 16u}) {
    CompileOptions copt;
    copt.lpu.m = m;
    copt.lpu.n = 8;
    Rng g2(3);
    const Netlist nl = reconvergent_grid(16, 6, g2);
    const CompileResult res = compile(nl, copt);
    std::cout << "  m=" << std::setw(3) << m << ": effective_m="
              << res.report.effective_m << " tree_sharing="
              << (res.report.tree_sharing ? "yes" : "no") << " retries="
              << res.report.retries << " wavefronts=" << res.report.wavefronts
              << " duplicates=" << res.report.duplicates << "\n";
  }
  return 0;
}
