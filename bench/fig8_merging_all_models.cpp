// Reproduces Fig. 8: throughput and MFG count before/after the merging
// procedure across all benchmarked models. Paper: throughput improves 5.2x
// on average, MFG count reduced by up to 9.4x.

#include <iomanip>
#include <iostream>

#include "baselines/lpu_throughput.hpp"
#include "bench_common.hpp"

int main() {
  using namespace lbnn;
  using namespace lbnn::baselines;

  const LpuConfig lpu = bench::paper_lpu();
  CompileOptions with;
  with.lpu = lpu;
  CompileOptions without = with;
  without.merge = false;
  const nn::SynthOptions synth = bench::tiny_synth();

  std::cout << "FIG 8: throughput and MFG count before/after merging "
               "(LPV count = 16)\n\n";
  std::cout << std::left << std::setw(16) << "model" << std::right
            << std::setw(14) << "FPS before" << std::setw(14) << "FPS after"
            << std::setw(10) << "gain" << std::setw(12) << "MFG before"
            << std::setw(12) << "MFG after" << std::setw(12) << "reduction\n";
  bench::print_rule(90);

  double sum_gain = 0;
  double max_reduction = 0;
  std::size_t count = 0;
  for (const auto& model : nn::all_models()) {
    const auto merged = compile_model_layers(model, synth, with, 31);
    const auto plain = compile_model_layers(model, synth, without, 31);

    const double fps_with = lpu_frames_per_second(merged, lpu);
    const double fps_without = lpu_frames_per_second(plain, lpu);
    std::size_t mfgs_with = 0, mfgs_without = 0;
    for (const auto& l : merged) mfgs_with += l.report.mfgs_after_merge;
    for (const auto& l : plain) mfgs_without += l.report.mfgs_after_merge;

    const double gain = fps_with / fps_without;
    const double reduction =
        static_cast<double>(mfgs_without) / static_cast<double>(mfgs_with);
    sum_gain += gain;
    max_reduction = std::max(max_reduction, reduction);
    ++count;

    std::cout << std::left << std::setw(16) << model.name << std::right
              << std::setw(14) << bench::fps_str(fps_without) << std::setw(14)
              << bench::fps_str(fps_with) << std::fixed << std::setprecision(2)
              << std::setw(9) << gain << "x" << std::setw(12) << mfgs_without
              << std::setw(12) << mfgs_with << std::setw(11) << reduction
              << "x\n";
  }
  bench::print_rule(90);
  std::cout << std::fixed << std::setprecision(2);
  std::cout << "average throughput gain: " << sum_gain / static_cast<double>(count)
            << "x (paper: 5.2x avg); max MFG reduction: " << max_reduction
            << "x (paper: up to 9.4x)\n";
  return 0;
}
