#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/lpu_throughput.hpp"
#include "common/rng.hpp"
#include "nn/model_zoo.hpp"

namespace lbnn::bench {

/// The paper's LPU configuration (Table I: LPV count = 16, 333 MHz).
inline LpuConfig paper_lpu(std::uint32_t n = 16) {
  LpuConfig cfg;
  cfg.m = 64;
  cfg.n = n;
  cfg.tsw = 5;
  cfg.clock_mhz = 333.0;
  return cfg;
}

/// Workload synthesis preset: NullaNet-Tiny neurons (fan-in-pruned,
/// QM-minimized), which is what the paper's upstream flow feeds the LPU.
/// See EXPERIMENTS.md "workload scaling" for how measured schedules
/// extrapolate to full layer dimensions.
inline nn::SynthOptions tiny_synth() {
  nn::SynthOptions s;
  s.style = nn::NeuronStyle::kNullaNetTiny;
  s.fanin_cap = 5;  // NullaNet-Tiny prunes neurons to LUT-sized fan-in
  s.max_neurons = 24;
  s.max_inputs = 96;
  return s;
}

/// Format a throughput in the paper's "K FPS" / "M FPS" style.
inline std::string fps_str(double fps) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (fps >= 1e6) {
    os << fps / 1e6 << "M";
  } else if (fps >= 1e3) {
    os << fps / 1e3 << "K";
  } else {
    os << fps;
  }
  return os.str();
}

inline void print_rule(std::size_t width) {
  std::cout << std::string(width, '-') << "\n";
}

/// Deterministic Zipf-distributed index picker for serving-mix workloads:
/// P(k) proportional to 1 / (k + 1)^s over k in [0, n) — index 0 is the most
/// popular model, exactly the skew real multi-tenant serving shows. Built on
/// lbnn::Rng so every platform and standard library draws the same stream
/// (std::discrete_distribution is not reproducible across libstdc++/libc++).
/// The CDF is precomputed once; pick() is a binary search.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double s) : cdf_(n == 0 ? 1 : n) {
    double total = 0.0;
    for (std::size_t k = 0; k < cdf_.size(); ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = total;
    }
    for (double& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding: pick() can never fall off
  }

  std::size_t size() const { return cdf_.size(); }

  /// Theoretical probability of index k.
  double probability(std::size_t k) const {
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
  }

  std::size_t pick(Rng& rng) const {
    const double u = rng.next_double();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(index <= k)
};

/// A bench metric that may be structurally unmeasured. A bench that gates a
/// property as a ratio (serve_simd, serve_aot) has no absolute p99 worth
/// tracking; it reports `unmeasured()` and the JSONL line carries
/// `"p99_us":null,"p99_measured":false` — an explicit shape the comparer
/// skips structurally, instead of the old 0.0 sentinel that conflated
/// "not measured" with a value.
struct OptMetric {
  double value = 0.0;
  bool measured = true;
  OptMetric(double v) : value(v) {}  // NOLINT: implicit by design
  OptMetric(double v, bool m) : value(v), measured(m) {}
};

inline OptMetric unmeasured() { return OptMetric(0.0, false); }

/// Append one machine-readable result line (JSONL) to the file named by the
/// LBNN_BENCH_JSON environment variable; a no-op when it is unset, so plain
/// interactive runs emit nothing. bench/run_all.py collects the lines into
/// BENCH_PR<N>.json — the checked-in perf-trajectory file CI diffs against.
/// A metric a bench cannot measure is reported as `unmeasured()` (JSON null)
/// and skipped by the comparer, not guessed.
inline void emit_bench_json(const std::string& name, double p50_us,
                            OptMetric p99_us, double goodput_per_sec,
                            bool pass) {
  const char* path = std::getenv("LBNN_BENCH_JSON");
  if (path == nullptr) return;
  std::ofstream os(path, std::ios::app);
  os << std::fixed << std::setprecision(3) << "{\"bench\":\"" << name
     << "\",\"p50_us\":" << p50_us << ",\"p99_us\":";
  if (p99_us.measured) {
    os << p99_us.value << ",\"p99_measured\":true";
  } else {
    os << "null,\"p99_measured\":false";
  }
  os << ",\"goodput_per_sec\":" << goodput_per_sec
     << ",\"pass\":" << (pass ? "true" : "false") << "}\n";
}

}  // namespace lbnn::bench
