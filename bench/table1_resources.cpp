// Reproduces Table I: resource utilization of the LPU design with
// LPV count = 16 on a Xilinx VU9P, plus a scaling sweep the paper's future
// work points at (heterogeneous / larger configurations).

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "resources/resource_model.hpp"

int main() {
  using namespace lbnn;
  using resources::estimate_lpu;

  std::cout << "TABLE I: Resource utilization of design of LPV count = 16\n";
  std::cout << "(analytic model calibrated to the VU9P prototype; "
               "paper: FF 478K(20.2%) LUT 433K(36.7%) BRAM 12240Kb(15.8%) 333MHz)\n\n";

  const LpuConfig cfg = bench::paper_lpu();
  const auto r = estimate_lpu(cfg);

  std::cout << std::fixed << std::setprecision(1);
  std::cout << std::setw(14) << "FF(%)" << std::setw(16) << "LUT(%)"
            << std::setw(18) << "BRAM(%)" << std::setw(10) << "FREQ\n";
  lbnn::bench::print_rule(58);
  std::cout << std::setw(7) << r.flip_flops / 1e3 << "K(" << std::setprecision(1)
            << r.ff_pct() << "%)"
            << std::setw(9) << r.luts / 1e3 << "K(" << r.lut_pct() << "%)"
            << std::setw(10) << r.bram_kb << "K(" << r.bram_pct() << "%)"
            << std::setw(7) << static_cast<int>(r.freq_mhz) << "MHz\n\n";

  std::cout << "Scaling sweep (same model):\n";
  std::cout << std::setw(6) << "m" << std::setw(6) << "n" << std::setw(12)
            << "FF(K)" << std::setw(12) << "LUT(K)" << std::setw(12)
            << "BRAM(Kb)" << std::setw(10) << "MHz\n";
  lbnn::bench::print_rule(58);
  for (const std::uint32_t m : {16u, 32u, 64u, 128u}) {
    for (const std::uint32_t n : {8u, 16u, 32u}) {
      LpuConfig c = cfg;
      c.m = m;
      c.n = n;
      const auto e = estimate_lpu(c);
      std::cout << std::setw(6) << m << std::setw(6) << n << std::setw(12)
                << e.flip_flops / 1e3 << std::setw(12) << e.luts / 1e3
                << std::setw(12) << e.bram_kb << std::setw(10)
                << static_cast<int>(e.freq_mhz) << "\n";
    }
  }
  return 0;
}
